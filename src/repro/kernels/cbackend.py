"""cffi-compiled C backend for the hot kernels.

Each C function mirrors its numpy oracle's accumulation structure so
the equivalence contract is provable, not hoped for:

* scatter/CSR kernels replicate ``np.bincount``'s per-target
  sequential accumulation order and are **bitwise** identical;
* block (bs x bs) kernels keep the oracle's outer order (blocks in
  slot order) but sum the inner ``j`` contraction sequentially where
  ``np.einsum`` may use SIMD pairwise order, so they are **ULP-bounded**
  rather than bitwise;
* float32-storage trisolves widen each loaded value to float64 before
  any arithmetic, exactly like the oracle's ``astype(np.float64)``
  (the paper's Table 2: f32 storage, f64 arithmetic).

The library is compiled once with ``-ffp-contract=off`` (FMA
contraction would change rounding and break bitwise claims) into a
source-hash-keyed cache directory and imported from there afterwards;
a failed build degrades to numpy via the capability layer.
"""

from __future__ import annotations

# lint: compiled (C twins of the numpy kernels; oracle map below)

import hashlib
import importlib
import os
import sys

import numpy as np

__all__ = ["load_cbackend", "CBackend"]

#: Compiled symbol -> dotted path of the numpy oracle it must match.
__oracles__ = {
    "edge_scatter2": "repro.sparse.segsum.segment_sum",
    "spmv_csr": "repro.sparse.spmv.spmv_csr",
    "spmv_csr_rows": "repro.sparse.spmv.spmv_csr",
    "spmv_bsr": "repro.sparse.bsr.BSRMatrix.matvec",
    "gather_spmv_bsr": "repro.parallel.spmd.rank_matvec",
    "lower_solve_csr": "repro.sparse.trisolve.lower_solve_csr",
    "upper_solve_csr": "repro.sparse.trisolve.upper_solve_csr",
    "lower_solve_bsr": "repro.sparse.trisolve.lower_solve_blocks",
    "upper_solve_bsr": "repro.sparse.trisolve.upper_solve_blocks",
    "scatter_blocks": "repro.sparse.layouts.assemble_bsr",
    "spmv_bsr_dedup": "repro.sparse.dedup.DedupBSR.matvec",
    "gather_spmv_bsr_dedup": "repro.parallel.spmd.rank_matvec_dedup",
    "lower_solve_bsr_dedup": "repro.sparse.trisolve.lower_solve_blocks_dedup",
    "upper_solve_bsr_dedup": "repro.sparse.trisolve.upper_solve_blocks_dedup",
    "rusanov_scatter": "repro.euler.fluxes.rusanov_flux",
    "load_cbackend": "repro.kernels.capability.resolve_engine",
}
__fallback__ = "pure numpy via repro.kernels dispatch (returns None)"

_CDEF = """
void edge_scatter2_f64(long long ne, long long ncomp,
    const long long *e0, const long long *e1,
    const double *wa, const double *wb, double *out_a, double *out_b);
void spmv_csr_f64(long long nrows, const long long *indptr,
    const long long *indices, const double *data, const double *x,
    double *y);
void spmv_csr_rows_f64(long long nsel, const long long *rows,
    const long long *indptr, const long long *indices,
    const double *data, const double *x, double *y);
void spmv_bsr_f64(long long nbrows, long long bs,
    const long long *indptr, const long long *indices,
    const double *data, const double *x, double *y);
void gather_spmv_bsr_f64(long long nblocks, long long bs,
    const long long *cols, const long long *seg, const double *data,
    const double *x, double *y);
void lower_solve_csr_f64(long long nsolve, const long long *order,
    const long long *indptr, const long long *indices,
    const double *data, double *x);
void lower_solve_csr_f32(long long nsolve, const long long *order,
    const long long *indptr, const long long *indices,
    const float *data, double *x);
void upper_solve_csr_f64(long long nsolve, const long long *order,
    const long long *indptr, const long long *indices,
    const double *data, const double *inv_diag, double *x);
void upper_solve_csr_f32(long long nsolve, const long long *order,
    const long long *indptr, const long long *indices,
    const float *data, const float *inv_diag, double *x);
void lower_solve_bsr_f64(long long nsolve, long long bs,
    const long long *order, const long long *indptr,
    const long long *indices, const double *data, double *x);
void lower_solve_bsr_f32(long long nsolve, long long bs,
    const long long *order, const long long *indptr,
    const long long *indices, const float *data, double *x);
void upper_solve_bsr_f64(long long nsolve, long long bs,
    const long long *order, const long long *indptr,
    const long long *indices, const double *data,
    const double *inv_diag, double *x);
void upper_solve_bsr_f32(long long nsolve, long long bs,
    const long long *order, const long long *indptr,
    const long long *indices, const float *data,
    const float *inv_diag, double *x);
void scatter_blocks_f64(long long nslots, long long bsq,
    const long long *slots, const double *src, double sign,
    double *data);
void spmv_bsr_dedup_f64(long long nbrows, long long bs,
    const long long *indptr, const long long *indices,
    const double *pool, const int32_t *pidx, const double *x,
    double *y);
void spmv_bsr_dedup_f32(long long nbrows, long long bs,
    const long long *indptr, const long long *indices,
    const float *pool, const int32_t *pidx, const double *x,
    double *y);
void gather_spmv_bsr_dedup_f64(long long nblocks, long long bs,
    const double *pool, const int32_t *pidx, const long long *cols,
    const long long *seg, const double *x, double *y);
void gather_spmv_bsr_dedup_f32(long long nblocks, long long bs,
    const float *pool, const int32_t *pidx, const long long *cols,
    const long long *seg, const double *x, double *y);
void lower_solve_bsr_dedup_f64(long long nsolve, long long bs,
    const long long *order, const long long *indptr,
    const long long *indices, const double *pool, const int32_t *pidx,
    double *x);
void lower_solve_bsr_dedup_f32(long long nsolve, long long bs,
    const long long *order, const long long *indptr,
    const long long *indices, const float *pool, const int32_t *pidx,
    double *x);
void upper_solve_bsr_dedup_f64(long long nsolve, long long bs,
    const long long *order, const long long *indptr,
    const long long *indices, const double *pool, const int32_t *pidx,
    const double *inv_diag, double *x);
void upper_solve_bsr_dedup_f32(long long nsolve, long long bs,
    const long long *order, const long long *indptr,
    const long long *indices, const float *pool, const int32_t *pidx,
    const float *inv_diag, double *x);
void rusanov_scatter_inc(long long ne, const long long *e0,
    const long long *e1, const double *ql, const double *qr,
    const double *s, double beta, double *out_a, double *out_b);
void rusanov_scatter_comp(long long ne, const long long *e0,
    const long long *e1, const double *ql, const double *qr,
    const double *s, double gamma, double *out_a, double *out_b);
"""

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Fused two-target edge scatter.  For each accumulator the additions
 * land in edge order m = 0..ne-1, the exact order np.bincount uses,
 * so each output array is bitwise-identical to one segment_sum. */
void edge_scatter2_f64(long long ne, long long ncomp,
    const long long *e0, const long long *e1,
    const double *wa, const double *wb, double *out_a, double *out_b)
{
    for (long long m = 0; m < ne; ++m) {
        const double *am = wa + m * ncomp;
        const double *bm = wb + m * ncomp;
        double *pa = out_a + e0[m] * ncomp;
        double *pb = out_b + e1[m] * ncomp;
        for (long long c = 0; c < ncomp; ++c) {
            pa[c] += am[c];
            pb[c] += bm[c];
        }
    }
}

/* Scalar CSR SpMV: per-row sequential accumulation in entry order ==
 * bincount order of the gather/segment-sum kernel (bitwise). */
void spmv_csr_f64(long long nrows, const long long *indptr,
    const long long *indices, const double *data, const double *x,
    double *y)
{
    for (long long i = 0; i < nrows; ++i) {
        double acc = 0.0;
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t)
            acc += data[t] * x[indices[t]];
        y[i] = acc;
    }
}

void spmv_csr_rows_f64(long long nsel, const long long *rows,
    const long long *indptr, const long long *indices,
    const double *data, const double *x, double *y)
{
    for (long long k = 0; k < nsel; ++k) {
        long long i = rows[k];
        double acc = 0.0;
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t)
            acc += data[t] * x[indices[t]];
        y[k] = acc;
    }
}

/* Block SpMV: per-block partial gemv, blocks accumulated in slot
 * order (the bincount order); the inner j-sum is sequential where
 * einsum may pair, so this is ULP-bounded against the oracle. */
void spmv_bsr_f64(long long nbrows, long long bs,
    const long long *indptr, const long long *indices,
    const double *data, const double *x, double *y)
{
    for (long long i = 0; i < nbrows; ++i) {
        double *yi = y + i * bs;
        for (long long r = 0; r < bs; ++r)
            yi[r] = 0.0;
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t) {
            const double *blk = data + t * bs * bs;
            const double *xj = x + indices[t] * bs;
            for (long long r = 0; r < bs; ++r) {
                double p = 0.0;
                for (long long c = 0; c < bs; ++c)
                    p += blk[r * bs + c] * xj[c];
                yi[r] += p;
            }
        }
    }
}

/* The SPMD per-rank SpMV: pre-gathered block rows, explicit segment
 * ids.  y must be zeroed by the caller (length n_owned * bs). */
void gather_spmv_bsr_f64(long long nblocks, long long bs,
    const long long *cols, const long long *seg, const double *data,
    const double *x, double *y)
{
    for (long long k = 0; k < nblocks; ++k) {
        const double *blk = data + k * bs * bs;
        const double *xj = x + cols[k] * bs;
        double *yk = y + seg[k] * bs;
        for (long long r = 0; r < bs; ++r) {
            double p = 0.0;
            for (long long c = 0; c < bs; ++c)
                p += blk[r * bs + c] * xj[c];
            yk[r] += p;
        }
    }
}

/* Triangular solves.  `order` is the concatenation of the dependency
 * levels (a topological order), so the sequential row loop resolves
 * dependencies exactly like the level-batched oracle; per-row entry
 * accumulation is in entry order (bincount order, bitwise for CSR).
 * The _f32 variants widen every loaded factor value to double before
 * arithmetic — identical to the oracle's astype(np.float64). */
#define LOWER_CSR(NAME, DTYPE)                                          \
void NAME(long long nsolve, const long long *order,                     \
    const long long *indptr, const long long *indices,                  \
    const DTYPE *data, double *x)                                       \
{                                                                       \
    for (long long k = 0; k < nsolve; ++k) {                            \
        long long i = order[k];                                         \
        double acc = 0.0;                                               \
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t)           \
            acc += (double)data[t] * x[indices[t]];                     \
        x[i] -= acc;                                                    \
    }                                                                   \
}
LOWER_CSR(lower_solve_csr_f64, double)
LOWER_CSR(lower_solve_csr_f32, float)

#define UPPER_CSR(NAME, DTYPE)                                          \
void NAME(long long nsolve, const long long *order,                     \
    const long long *indptr, const long long *indices,                  \
    const DTYPE *data, const DTYPE *inv_diag, double *x)                \
{                                                                       \
    for (long long k = 0; k < nsolve; ++k) {                            \
        long long i = order[k];                                         \
        double acc = 0.0;                                               \
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t)           \
            acc += (double)data[t] * x[indices[t]];                     \
        x[i] = (x[i] - acc) * (double)inv_diag[i];                      \
    }                                                                   \
}
UPPER_CSR(upper_solve_csr_f64, double)
UPPER_CSR(upper_solve_csr_f32, float)

#define MAX_BS 32

#define LOWER_BSR(NAME, DTYPE)                                          \
void NAME(long long nsolve, long long bs, const long long *order,       \
    const long long *indptr, const long long *indices,                  \
    const DTYPE *data, double *x)                                       \
{                                                                       \
    double acc[MAX_BS];                                                 \
    for (long long k = 0; k < nsolve; ++k) {                            \
        long long i = order[k];                                         \
        for (long long r = 0; r < bs; ++r)                              \
            acc[r] = 0.0;                                               \
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t) {         \
            const DTYPE *blk = data + t * bs * bs;                      \
            const double *xj = x + indices[t] * bs;                     \
            for (long long r = 0; r < bs; ++r) {                        \
                double p = 0.0;                                         \
                for (long long c = 0; c < bs; ++c)                      \
                    p += (double)blk[r * bs + c] * xj[c];               \
                acc[r] += p;                                            \
            }                                                           \
        }                                                               \
        for (long long r = 0; r < bs; ++r)                              \
            x[i * bs + r] -= acc[r];                                    \
    }                                                                   \
}
LOWER_BSR(lower_solve_bsr_f64, double)
LOWER_BSR(lower_solve_bsr_f32, float)

#define UPPER_BSR(NAME, DTYPE)                                          \
void NAME(long long nsolve, long long bs, const long long *order,       \
    const long long *indptr, const long long *indices,                  \
    const DTYPE *data, const DTYPE *inv_diag, double *x)                \
{                                                                       \
    double acc[MAX_BS];                                                 \
    double rhs[MAX_BS];                                                 \
    for (long long k = 0; k < nsolve; ++k) {                            \
        long long i = order[k];                                         \
        for (long long r = 0; r < bs; ++r)                              \
            acc[r] = 0.0;                                               \
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t) {         \
            const DTYPE *blk = data + t * bs * bs;                      \
            const double *xj = x + indices[t] * bs;                     \
            for (long long r = 0; r < bs; ++r) {                        \
                double p = 0.0;                                         \
                for (long long c = 0; c < bs; ++c)                      \
                    p += (double)blk[r * bs + c] * xj[c];               \
                acc[r] += p;                                            \
            }                                                           \
        }                                                               \
        for (long long r = 0; r < bs; ++r)                              \
            rhs[r] = x[i * bs + r] - acc[r];                            \
        const DTYPE *inv = inv_diag + i * bs * bs;                      \
        for (long long r = 0; r < bs; ++r) {                            \
            double p = 0.0;                                             \
            for (long long c = 0; c < bs; ++c)                          \
                p += (double)inv[r * bs + c] * rhs[c];                  \
            x[i * bs + r] = p;                                          \
        }                                                               \
    }                                                                   \
}
UPPER_BSR(upper_solve_bsr_f64, double)
UPPER_BSR(upper_solve_bsr_f32, float)

/* Jacobian slot scatter: data[slots[k]] = sign * src[k] blockwise.
 * sign is +-1.0; both multiplications are exact, so the result is
 * bitwise-identical to the fancy-indexed assignment it replaces. */
void scatter_blocks_f64(long long nslots, long long bsq,
    const long long *slots, const double *src, double sign,
    double *data)
{
    for (long long k = 0; k < nslots; ++k) {
        double *d = data + slots[k] * bsq;
        const double *s = src + k * bsq;
        for (long long c = 0; c < bsq; ++c)
            d[c] = sign * s[c];
    }
}

/* ---- deduplicated BSR kernels ------------------------------------
 * Identical arithmetic to the dense block kernels above with one
 * extra indirection: the block values come from a small unique-block
 * pool addressed by an int32 index stream (the bandwidth win — 4
 * bytes streamed per block instead of bs*bs*8).  The _f32 variants
 * widen each pool value to double before arithmetic, exactly like
 * the float32-storage trisolves. */
#define SPMV_BSR_DEDUP(NAME, DTYPE)                                     \
void NAME(long long nbrows, long long bs,                               \
    const long long *indptr, const long long *indices,                  \
    const DTYPE *pool, const int32_t *pidx, const double *x,            \
    double *y)                                                          \
{                                                                       \
    for (long long i = 0; i < nbrows; ++i) {                            \
        double *yi = y + i * bs;                                        \
        for (long long r = 0; r < bs; ++r)                              \
            yi[r] = 0.0;                                                \
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t) {         \
            const DTYPE *blk = pool + (long long)pidx[t] * bs * bs;     \
            const double *xj = x + indices[t] * bs;                     \
            for (long long r = 0; r < bs; ++r) {                        \
                double p = 0.0;                                         \
                for (long long c = 0; c < bs; ++c)                      \
                    p += (double)blk[r * bs + c] * xj[c];               \
                yi[r] += p;                                             \
            }                                                           \
        }                                                               \
    }                                                                   \
}
SPMV_BSR_DEDUP(spmv_bsr_dedup_f64, double)
SPMV_BSR_DEDUP(spmv_bsr_dedup_f32, float)

#define GATHER_SPMV_BSR_DEDUP(NAME, DTYPE)                              \
void NAME(long long nblocks, long long bs,                              \
    const DTYPE *pool, const int32_t *pidx, const long long *cols,      \
    const long long *seg, const double *x, double *y)                   \
{                                                                       \
    for (long long k = 0; k < nblocks; ++k) {                           \
        const DTYPE *blk = pool + (long long)pidx[k] * bs * bs;         \
        const double *xj = x + cols[k] * bs;                            \
        double *yk = y + seg[k] * bs;                                   \
        for (long long r = 0; r < bs; ++r) {                            \
            double p = 0.0;                                             \
            for (long long c = 0; c < bs; ++c)                          \
                p += (double)blk[r * bs + c] * xj[c];                   \
            yk[r] += p;                                                 \
        }                                                               \
    }                                                                   \
}
GATHER_SPMV_BSR_DEDUP(gather_spmv_bsr_dedup_f64, double)
GATHER_SPMV_BSR_DEDUP(gather_spmv_bsr_dedup_f32, float)

#define LOWER_BSR_DEDUP(NAME, DTYPE)                                    \
void NAME(long long nsolve, long long bs, const long long *order,       \
    const long long *indptr, const long long *indices,                  \
    const DTYPE *pool, const int32_t *pidx, double *x)                  \
{                                                                       \
    double acc[MAX_BS];                                                 \
    for (long long k = 0; k < nsolve; ++k) {                            \
        long long i = order[k];                                         \
        for (long long r = 0; r < bs; ++r)                              \
            acc[r] = 0.0;                                               \
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t) {         \
            const DTYPE *blk = pool + (long long)pidx[t] * bs * bs;     \
            const double *xj = x + indices[t] * bs;                     \
            for (long long r = 0; r < bs; ++r) {                        \
                double p = 0.0;                                         \
                for (long long c = 0; c < bs; ++c)                      \
                    p += (double)blk[r * bs + c] * xj[c];               \
                acc[r] += p;                                            \
            }                                                           \
        }                                                               \
        for (long long r = 0; r < bs; ++r)                              \
            x[i * bs + r] -= acc[r];                                    \
    }                                                                   \
}
LOWER_BSR_DEDUP(lower_solve_bsr_dedup_f64, double)
LOWER_BSR_DEDUP(lower_solve_bsr_dedup_f32, float)

#define UPPER_BSR_DEDUP(NAME, DTYPE)                                    \
void NAME(long long nsolve, long long bs, const long long *order,       \
    const long long *indptr, const long long *indices,                  \
    const DTYPE *pool, const int32_t *pidx, const DTYPE *inv_diag,      \
    double *x)                                                          \
{                                                                       \
    double acc[MAX_BS];                                                 \
    double rhs[MAX_BS];                                                 \
    for (long long k = 0; k < nsolve; ++k) {                            \
        long long i = order[k];                                         \
        for (long long r = 0; r < bs; ++r)                              \
            acc[r] = 0.0;                                               \
        for (long long t = indptr[i]; t < indptr[i + 1]; ++t) {         \
            const DTYPE *blk = pool + (long long)pidx[t] * bs * bs;     \
            const double *xj = x + indices[t] * bs;                     \
            for (long long r = 0; r < bs; ++r) {                        \
                double p = 0.0;                                         \
                for (long long c = 0; c < bs; ++c)                      \
                    p += (double)blk[r * bs + c] * xj[c];               \
                acc[r] += p;                                            \
            }                                                           \
        }                                                               \
        for (long long r = 0; r < bs; ++r)                              \
            rhs[r] = x[i * bs + r] - acc[r];                            \
        const DTYPE *inv = inv_diag + i * bs * bs;                      \
        for (long long r = 0; r < bs; ++r) {                            \
            double p = 0.0;                                             \
            for (long long c = 0; c < bs; ++c)                          \
                p += (double)inv[r * bs + c] * rhs[c];                  \
            x[i * bs + r] = p;                                          \
        }                                                               \
    }                                                                   \
}
UPPER_BSR_DEDUP(upper_solve_bsr_dedup_f64, double)
UPPER_BSR_DEDUP(upper_solve_bsr_dedup_f32, float)

/* ---- fused Rusanov flux + two-target edge scatter -----------------
 * F = (F(ql)+F(qr))/2 - lam/2 (qr-ql), lam = max wavespeed, computed
 * per edge and accumulated into both endpoint accumulators in edge
 * order (the bincount order).  Scalar operation order mirrors the
 * numpy expressions in repro.euler.fluxes statement for statement;
 * -ffp-contract=off forbids FMA, so differences vs the oracle come
 * only from SIMD pairing of the length-3 dot products (ULP-level). */
void rusanov_scatter_inc(long long ne, const long long *e0,
    const long long *e1, const double *ql, const double *qr,
    const double *s, double beta, double *out_a, double *out_b)
{
    for (long long m = 0; m < ne; ++m) {
        const double *l = ql + m * 4;
        const double *r = qr + m * 4;
        const double *sm = s + m * 3;
        double unl = l[1] * sm[0] + l[2] * sm[1] + l[3] * sm[2];
        double unr = r[1] * sm[0] + r[2] * sm[1] + r[3] * sm[2];
        double s2 = sm[0] * sm[0] + sm[1] * sm[1] + sm[2] * sm[2];
        double wsl = fabs(unl) + sqrt(unl * unl + beta * s2);
        double wsr = fabs(unr) + sqrt(unr * unr + beta * s2);
        double lam = wsl >= wsr ? wsl : wsr;
        double f[4];
        f[0] = 0.5 * (beta * unl + beta * unr)
             - 0.5 * lam * (r[0] - l[0]);
        for (long long c = 0; c < 3; ++c)
            f[1 + c] = 0.5 * ((l[1 + c] * unl + l[0] * sm[c])
                            + (r[1 + c] * unr + r[0] * sm[c]))
                     - 0.5 * lam * (r[1 + c] - l[1 + c]);
        double *pa = out_a + e0[m] * 4;
        double *pb = out_b + e1[m] * 4;
        for (long long c = 0; c < 4; ++c) {
            pa[c] += f[c];
            pb[c] += f[c];
        }
    }
}

void rusanov_scatter_comp(long long ne, const long long *e0,
    const long long *e1, const double *ql, const double *qr,
    const double *s, double gamma, double *out_a, double *out_b)
{
    double g1 = gamma - 1.0;
    for (long long m = 0; m < ne; ++m) {
        const double *l = ql + m * 5;
        const double *r = qr + m * 5;
        const double *sm = s + m * 3;
        double rhol = l[0], rhor = r[0];
        double vl0 = l[1] / rhol, vl1 = l[2] / rhol, vl2 = l[3] / rhol;
        double vr0 = r[1] / rhor, vr1 = r[2] / rhor, vr2 = r[3] / rhor;
        double kel = 0.5 * rhol * (vl0 * vl0 + vl1 * vl1 + vl2 * vl2);
        double ker = 0.5 * rhor * (vr0 * vr0 + vr1 * vr1 + vr2 * vr2);
        double pl = g1 * (l[4] - kel);
        double pr = g1 * (r[4] - ker);
        double unl = vl0 * sm[0] + vl1 * sm[1] + vl2 * sm[2];
        double unr = vr0 * sm[0] + vr1 * sm[1] + vr2 * sm[2];
        double smag = sqrt(sm[0] * sm[0] + sm[1] * sm[1] + sm[2] * sm[2]);
        double al2 = gamma * pl / rhol;
        double ar2 = gamma * pr / rhor;
        double cl = sqrt(al2 > 0.0 ? al2 : 0.0);
        double cr = sqrt(ar2 > 0.0 ? ar2 : 0.0);
        double wsl = fabs(unl) + cl * smag;
        double wsr = fabs(unr) + cr * smag;
        double lam = wsl >= wsr ? wsl : wsr;
        double f[5];
        f[0] = 0.5 * (rhol * unl + rhor * unr)
             - 0.5 * lam * (r[0] - l[0]);
        for (long long c = 0; c < 3; ++c)
            f[1 + c] = 0.5 * ((l[1 + c] * unl + pl * sm[c])
                            + (r[1 + c] * unr + pr * sm[c]))
                     - 0.5 * lam * (r[1 + c] - l[1 + c]);
        f[4] = 0.5 * ((l[4] + pl) * unl + (r[4] + pr) * unr)
             - 0.5 * lam * (r[4] - l[4]);
        double *pa = out_a + e0[m] * 5;
        double *pb = out_b + e1[m] * 5;
        for (long long c = 0; c < 5; ++c) {
            pa[c] += f[c];
            pb[c] += f[c];
        }
    }
}
"""

#: Block-size cap of the stack buffers in the BSR C kernels.
MAX_BS = 32


def _cache_dir() -> str:
    path = os.environ.get("REPRO_KERNELS_CACHE")
    if not path:
        base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache")
        path = os.path.join(base, "repro_kernels")
    os.makedirs(path, exist_ok=True)
    return path


class CBackend:
    """Thin zero-copy wrappers around the compiled library.

    All methods expect the dispatch layer (:mod:`repro.kernels`) to
    have validated dtypes and made the arrays C-contiguous; they only
    translate numpy buffers to pointers and call C.
    """

    name = "c"

    def __init__(self, ffi, lib) -> None:
        self._ffi = ffi
        self._lib = lib

    # -- pointer helpers ------------------------------------------------
    def _pd(self, a):
        return self._ffi.from_buffer("double[]", a)

    def _pdw(self, a):
        return self._ffi.from_buffer("double[]", a, require_writable=True)

    def _pf(self, a):
        return self._ffi.from_buffer("float[]", a)

    def _pi(self, a):
        return self._ffi.from_buffer("long long[]", a)

    def _pi32(self, a):
        return self._ffi.from_buffer("int32_t[]", a)

    # -- kernels --------------------------------------------------------
    def edge_scatter2(self, e0, e1, wa, wb, n):
        trailing = int(np.prod(wa.shape[1:])) if wa.ndim > 1 else 1
        out_a = np.zeros((n,) + wa.shape[1:], dtype=np.float64)
        out_b = np.zeros((n,) + wb.shape[1:], dtype=np.float64)
        self._lib.edge_scatter2_f64(
            wa.shape[0], trailing, self._pi(e0), self._pi(e1),
            self._pd(wa), self._pd(wb), self._pdw(out_a), self._pdw(out_b))
        return out_a, out_b

    def spmv_csr(self, indptr, indices, data, x):
        y = np.empty(indptr.size - 1, dtype=np.float64)
        self._lib.spmv_csr_f64(indptr.size - 1, self._pi(indptr),
                               self._pi(indices), self._pd(data),
                               self._pd(x), self._pdw(y))
        return y

    def spmv_csr_rows(self, indptr, indices, data, x, rows):
        y = np.empty(rows.size, dtype=np.float64)
        self._lib.spmv_csr_rows_f64(rows.size, self._pi(rows),
                                    self._pi(indptr), self._pi(indices),
                                    self._pd(data), self._pd(x),
                                    self._pdw(y))
        return y

    def spmv_bsr(self, indptr, indices, data, x, nbrows):
        bs = data.shape[1]
        y = np.empty(nbrows * bs, dtype=np.float64)
        self._lib.spmv_bsr_f64(nbrows, bs, self._pi(indptr),
                               self._pi(indices), self._pd(data),
                               self._pd(x), self._pdw(y))
        return y

    def gather_spmv_bsr(self, data_blocks, cols, seg, x, n_owned):
        bs = data_blocks.shape[1]
        y = np.zeros((n_owned, bs), dtype=np.float64)
        self._lib.gather_spmv_bsr_f64(data_blocks.shape[0], bs,
                                      self._pi(cols), self._pi(seg),
                                      self._pd(data_blocks), self._pd(x),
                                      self._pdw(y))
        return y

    def lower_solve_csr(self, indptr, indices, data, x, order):
        fn, pd = ((self._lib.lower_solve_csr_f32, self._pf)
                  if data.dtype == np.float32
                  else (self._lib.lower_solve_csr_f64, self._pd))
        fn(order.size, self._pi(order), self._pi(indptr),
           self._pi(indices), pd(data), self._pdw(x))

    def upper_solve_csr(self, indptr, indices, data, inv_diag, x, order):
        fn, pd = ((self._lib.upper_solve_csr_f32, self._pf)
                  if data.dtype == np.float32
                  else (self._lib.upper_solve_csr_f64, self._pd))
        fn(order.size, self._pi(order), self._pi(indptr),
           self._pi(indices), pd(data), pd(inv_diag), self._pdw(x))

    def lower_solve_bsr(self, indptr, indices, data, x, order, bs):
        fn, pd = ((self._lib.lower_solve_bsr_f32, self._pf)
                  if data.dtype == np.float32
                  else (self._lib.lower_solve_bsr_f64, self._pd))
        fn(order.size, bs, self._pi(order), self._pi(indptr),
           self._pi(indices), pd(data), self._pdw(x))

    def upper_solve_bsr(self, indptr, indices, data, inv_diag, x, order, bs):
        fn, pd = ((self._lib.upper_solve_bsr_f32, self._pf)
                  if data.dtype == np.float32
                  else (self._lib.upper_solve_bsr_f64, self._pd))
        fn(order.size, bs, self._pi(order), self._pi(indptr),
           self._pi(indices), pd(data), pd(inv_diag), self._pdw(x))

    def scatter_blocks(self, slots, src, sign, data):
        bsq = int(np.prod(src.shape[1:])) if src.ndim > 1 else 1
        self._lib.scatter_blocks_f64(slots.size, bsq, self._pi(slots),
                                     self._pd(src), float(sign),
                                     self._pdw(data))

    # -- deduplicated BSR kernels --------------------------------------
    def spmv_bsr_dedup(self, indptr, indices, pool, pidx, x, nbrows):
        bs = pool.shape[1]
        y = np.empty(nbrows * bs, dtype=np.float64)
        fn, pp = ((self._lib.spmv_bsr_dedup_f32, self._pf)
                  if pool.dtype == np.float32
                  else (self._lib.spmv_bsr_dedup_f64, self._pd))
        fn(nbrows, bs, self._pi(indptr), self._pi(indices), pp(pool),
           self._pi32(pidx), self._pd(x), self._pdw(y))
        return y

    def gather_spmv_bsr_dedup(self, pool, pidx_rows, cols, seg, x, n_owned):
        bs = pool.shape[1]
        y = np.zeros((n_owned, bs), dtype=np.float64)
        fn, pp = ((self._lib.gather_spmv_bsr_dedup_f32, self._pf)
                  if pool.dtype == np.float32
                  else (self._lib.gather_spmv_bsr_dedup_f64, self._pd))
        fn(pidx_rows.size, bs, pp(pool), self._pi32(pidx_rows),
           self._pi(cols), self._pi(seg), self._pd(x), self._pdw(y))
        return y

    def lower_solve_bsr_dedup(self, indptr, indices, pool, pidx, x,
                              order, bs):
        fn, pp = ((self._lib.lower_solve_bsr_dedup_f32, self._pf)
                  if pool.dtype == np.float32
                  else (self._lib.lower_solve_bsr_dedup_f64, self._pd))
        fn(order.size, bs, self._pi(order), self._pi(indptr),
           self._pi(indices), pp(pool), self._pi32(pidx), self._pdw(x))

    def upper_solve_bsr_dedup(self, indptr, indices, pool, pidx,
                              inv_diag, x, order, bs):
        fn, pp = ((self._lib.upper_solve_bsr_dedup_f32, self._pf)
                  if pool.dtype == np.float32
                  else (self._lib.upper_solve_bsr_dedup_f64, self._pd))
        fn(order.size, bs, self._pi(order), self._pi(indptr),
           self._pi(indices), pp(pool), self._pi32(pidx), pp(inv_diag),
           self._pdw(x))

    # -- fused Rusanov flux + scatter ----------------------------------
    def rusanov_scatter(self, e0, e1, ql, qr, s, n, model, param):
        ncomp = ql.shape[1]
        out_a = np.zeros((n, ncomp), dtype=np.float64)
        out_b = np.zeros((n, ncomp), dtype=np.float64)
        fn = (self._lib.rusanov_scatter_inc if model == "incompressible"
              else self._lib.rusanov_scatter_comp)
        fn(ql.shape[0], self._pi(e0), self._pi(e1), self._pd(ql),
           self._pd(qr), self._pd(s), param, self._pdw(out_a),
           self._pdw(out_b))
        return out_a, out_b


def load_cbackend() -> CBackend | None:
    """Build (once) or import the compiled library; None on failure.

    The extension name carries a hash of the C source, so editing the
    kernels above automatically invalidates stale cached builds.
    """
    digest = hashlib.sha1(_SOURCE.encode()).hexdigest()[:12]
    modname = f"_repro_ckernels_{digest}"
    cachedir = _cache_dir()
    if cachedir not in sys.path:
        sys.path.insert(0, cachedir)
    try:
        mod = importlib.import_module(modname)
        return CBackend(mod.ffi, mod.lib)
    except ImportError:
        pass
    try:
        import cffi

        builder = cffi.FFI()
        builder.cdef(_CDEF)
        builder.set_source(modname, _SOURCE,
                           extra_compile_args=["-O2", "-ffp-contract=off"])
        builder.compile(tmpdir=cachedir, verbose=False)
        importlib.invalidate_caches()
        mod = importlib.import_module(modname)
        return CBackend(mod.ffi, mod.lib)
    except Exception as exc:
        # Broken toolchain / failed build: quarantine with the reason
        # so capability_report can explain the numpy fallback.
        from repro.kernels import capability
        capability.record_quarantine("c", "build", exc)
        return None
