#!/usr/bin/env python3
"""Quickstart: solve an incompressible Euler wing flow with ΨNKS.

Builds a small wing-in-a-box mesh (the scaled M6 stand-in), runs the
pseudo-transient Newton-Krylov-Schwarz solver in its production
configuration (matrix-free second-order operator, first-order ILU
block-Jacobi preconditioner, SER CFL continuation), and prints the
convergence history and a physical summary of the flow.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NKSSolver, SolverConfig, wing_problem
from repro.core.config import PreconditionerConfig
from repro.solvers.ptc import PTCConfig


def main() -> None:
    # 1. Build the problem: geometry, dual metrics, BCs, freestream.
    prob = wing_problem(13, 9, 7, alpha_deg=3.0)
    print(prob.mesh.summary())
    print(f"unknowns: {prob.num_unknowns} "
          f"({prob.disc.ncomp} per vertex, interlaced)\n")

    # 2. Configure the solver (all of the paper's Sec. 2.4 knobs live
    #    in SolverConfig; these are the tuned defaults).
    config = SolverConfig(
        ptc=PTCConfig(cfl0=10.0, exponent=1.0),
        matrix_free=True,          # true 2nd-order J*v, assembled 1st-order PC
        jacobian_lag=2,            # refresh the preconditioner every 2 steps
        max_steps=40,
        target_reduction=1e-8,
        precond=PreconditionerConfig(nparts=4, fill_level=1),
    )

    # 3. Solve.
    solver = NKSSolver(prob.disc, config)
    report = solver.solve(prob.initial.flat(), verbose=True)

    # 4. Inspect.
    print(f"\nconverged: {report.converged} in {report.num_steps} steps, "
          f"{report.total_linear_iterations} linear iterations")
    times = report.phase_times()
    total = sum(times.values())
    print("phase breakdown: " + ", ".join(
        f"{k} {100 * v / total:.0f}%" for k, v in times.items()))

    q = report.final_state.reshape(-1, prob.disc.ncomp)
    bc = prob.disc.bc
    wall = bc.vertices[bc.wall_mask]
    print(f"\nwall vertices: {wall.size}")
    print(f"wall pressure range: [{q[wall, 0].min():+.4f}, "
          f"{q[wall, 0].max():+.4f}] (freestream 0.0)")
    speed = np.linalg.norm(q[:, 1:4], axis=1)
    print(f"speed range: [{speed.min():.3f}, {speed.max():.3f}] "
          f"(freestream 1.0)")


if __name__ == "__main__":
    main()
