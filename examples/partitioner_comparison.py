#!/usr/bin/env python3
"""Partitioner comparison (the paper's Fig. 4).

Partitions the same mesh with the k-MeTiS-like multilevel k-way
partitioner and the p-MeTiS-like strict-balance recursive bisection,
compares partition quality (balance, cut, connectedness), then runs
the real solver on both partitions to show the convergence difference
that makes k-way the better choice at scale.

Run:  python examples/partitioner_comparison.py
"""

from repro.core.reporting import format_table
from repro.experiments.common import default_wing, measured_linear_iterations
from repro.partition import (kway_partition, partition_quality,
                             pmetis_partition)


def main() -> None:
    prob = default_wing("medium")
    graph = prob.mesh.vertex_graph()
    print(prob.mesh.summary(), "\n")

    rows = []
    for p in (4, 16, 32):
        for name, fn in (("k-metis-like", kway_partition),
                         ("p-metis-like", pmetis_partition)):
            labels = fn(graph, p, seed=0)
            q = partition_quality(graph, labels)
            its, _ = measured_linear_iterations(prob, p, labels=labels,
                                                fill_level=0, max_steps=4)
            rows.append([p, name, round(q.imbalance, 3), q.edge_cut,
                         q.total_extra_components,
                         round(q.mean_connectivity, 1), sum(its)])

    print(format_table(
        ["parts", "partitioner", "imbalance", "edge cut", "extra comps",
         "connectivity", "NKS linear its"],
        rows, title="Partition quality vs. NKS convergence"))
    print("\np-MeTiS-style balances perfectly but fragments/raggedises "
          "subdomains as the\npart count grows; the block preconditioner "
          "then converges slower — the\npaper's Fig. 4 crossover.")


if __name__ == "__main__":
    main()
