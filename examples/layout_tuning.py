#!/usr/bin/env python3
"""Data-layout tuning walkthrough (the paper's Table 1 / Fig. 3 story).

Shows, for one mesh, what each layout enhancement does to:
  * the mesh/matrix locality metrics (edge span, matrix bandwidth);
  * the simulated R10000 cache/TLB counters of the flux and SpMV
    kernels under that layout;
  * the memory-centric predicted time per pseudo-timestep.

Run:  python examples/layout_tuning.py
"""

from repro.core.reporting import format_table
from repro.euler.problems import wing_problem
from repro.experiments.common import scaled_hierarchy
from repro.memory.trace import flux_loop_trace, spmv_bsr_trace, spmv_csr_trace
from repro.mesh import mesh_locality_report
from repro.perfmodel.machines import ORIGIN2000_R10K
from repro.perfmodel.time_model import kernel_time_from_counters
from repro.sparse.layouts import field_split_csr_from_bsr

CACHE_SCALE = 16   # R10000 caches shrunk with the mesh (see DESIGN.md)

CONFIGS = [
    # (label, vertex ordering, edge ordering, interlaced, blocked)
    ("vector baseline (NOER, noninterlaced)", "random", "colored", False, False),
    ("+ interlacing", "random", "colored", True, False),
    ("+ blocking", "random", "colored", True, True),
    ("+ edge/node reordering", "rcm", "sorted", True, True),
]


def main() -> None:
    machine = ORIGIN2000_R10K
    rows = []
    base_time = None
    for label, vo, eo, interlaced, blocked in CONFIGS:
        prob = wing_problem(16, 10, 8, vertex_ordering=vo, edge_ordering=eo)
        mesh, disc = prob.mesh, prob.disc
        loc = mesh_locality_report(mesh)

        jac = disc.assemble_jacobian(prob.initial.flat())
        if blocked:
            spmv = spmv_bsr_trace(jac)
        elif interlaced:
            spmv = spmv_csr_trace(jac.to_csr())
        else:
            spmv = spmv_csr_trace(field_split_csr_from_bsr(jac))
        flux = flux_loop_trace(mesh.edges, mesh.num_vertices, disc.ncomp,
                               interlaced=interlaced)

        hier = scaled_hierarchy(machine, CACHE_SCALE)
        hier.run(flux)
        hier.run(spmv)
        c = hier.counters
        pred = kernel_time_from_counters(
            c, disc.residual_flops() + 2 * jac.nnzb * disc.ncomp**2,
            machine).total
        if base_time is None:
            base_time = pred
        rows.append([label, loc.matrix_bandwidth,
                     round(loc.edge_span["mean"], 1), c.tlb_misses,
                     c.l1_misses, c.l2_misses, round(pred, 4),
                     round(base_time / pred, 2)])

    print(format_table(
        ["layout", "matrix bw", "edge span", "TLB miss", "L1 miss",
         "L2 miss", "pred time (s)", "speedup"],
        rows,
        title=f"Layout tuning on {machine.name} (caches/{CACHE_SCALE})"))
    print("\nEach enhancement tightens the reference stream; the paper's "
          "5.7x overall\nimprovement comes from exactly these counters "
          "shrinking (Fig. 3).")


if __name__ == "__main__":
    main()
