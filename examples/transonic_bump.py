#!/usr/bin/env python3
"""Transonic bump flow: shocked-flow robustness continuation.

Demonstrates the paper's Sec. 2.4.1 machinery for flows with near
discontinuities: start first-order with a small CFL and a damped SER
exponent (p = 0.75 once second-order is active, 1.5 while first-order),
switch discretisation order after two orders of residual reduction, and
pick a TVD limiter (minmod) that does not limit-cycle at the shock.

Run:  python examples/transonic_bump.py
"""

import numpy as np

from repro.core import NKSSolver, SolverConfig
from repro.euler import transonic_bump_problem
from repro.solvers.ptc import PTCConfig


def main() -> None:
    # Roe flux-difference splitting (FUN3D's production scheme): at
    # this Mach it resolves the supersonic pocket Rusanov smears away.
    prob = transonic_bump_problem(17, 4, 8, mach=0.84, limiter="minmod",
                                  flux_scheme="roe")
    print(prob.mesh.summary())
    print("freestream Mach 0.84, cosine bump (10% height) on the floor\n")

    config = SolverConfig(
        ptc=PTCConfig(
            cfl0=2.0,                  # cautious start near a shock
            exponent=0.75,             # damped SER power (paper Sec. 2.4.1)
            switch_order_drop=1e-2,    # 1st -> 2nd order after 100x drop
            first_order_exponent=1.5,  # aggressive while 1st-order
        ),
        max_steps=80, target_reduction=3e-6,
        matrix_free=True, jacobian_lag=2,
    )
    rep = NKSSolver(prob.disc, config).solve(prob.initial.flat(),
                                             verbose=True)
    print(f"\nconverged: {rep.converged} in {rep.num_steps} steps")

    q = rep.final_state.reshape(-1, 5)
    rho = q[:, 0]
    vel = q[:, 1:4] / rho[:, None]
    p = 0.4 * (q[:, 4] - 0.5 * rho * np.einsum("ij,ij->i", vel, vel))
    mach = np.linalg.norm(vel, axis=1) / np.sqrt(1.4 * p / rho)
    print(f"Mach range: {mach.min():.3f} - {mach.max():.3f}")

    # Surface-pressure sweep along the bump centreline.
    bc = prob.disc.bc
    floor = bc.vertices[bc.wall_mask]
    mid = floor[np.abs(prob.mesh.coords[floor, 1] - 0.5) < 0.35]
    order = np.argsort(prob.mesh.coords[mid, 0])
    print("\nfloor pressure vs x (freestream p = 1):")
    for v in mid[order]:
        x = prob.mesh.coords[v, 0]
        bar = "#" * int(max(p[v], 0) * 30)
        print(f"  x={x:5.2f} |{bar} {p[v]:.3f}")
    print("\nAcceleration over the crest, recompression on the lee side — "
          "the shock's\nfootprint at this resolution.")


if __name__ == "__main__":
    main()
