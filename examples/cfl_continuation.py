#!/usr/bin/env python3
"""Pseudo-transient continuation tuning (the paper's Fig. 5).

Sweeps the initial CFL number of the SER timestep law and prints the
residual histories as ASCII curves: a small initial CFL is robust but
pays a long induction period; an aggressive one reaches the domain of
superlinear Newton convergence much sooner on smooth flows.

Run:  python examples/cfl_continuation.py
"""

import numpy as np

from repro.experiments.fig5 import run_fig5


def ascii_curve(residuals: np.ndarray, width: int = 60,
                floor: float = 1e-10) -> list[str]:
    """Render log10(residual) vs step as rows of '#'."""
    logs = np.log10(np.maximum(residuals, floor))
    lo, hi = np.log10(floor), 0.0
    out = []
    for step, v in enumerate(logs):
        frac = (v - lo) / (hi - lo)
        bar = "#" * max(1, int(frac * width))
        out.append(f"  {step:3d} |{bar}  {residuals[step]:.1e}")
    return out


def main() -> None:
    result, histories = run_fig5(cfl0_values=(1.0, 5.0, 10.0, 50.0),
                                 size="small")
    print(result.table())
    for h in histories:
        print(f"\nCFL0 = {h.cfl0:g}  "
              f"({h.steps_to_target} steps to 1e-6 reduction)")
        print("\n".join(ascii_curve(h.residuals)))
    print("\nNote the induction plateau of CFL0=1 — the paper bypasses it "
          "with an\naggressive initial CFL whenever the flow is smooth "
          "(Sec. 2.4.1).")


if __name__ == "__main__":
    main()
