#!/usr/bin/env python3
"""Record a solver trace: the quickstart flow, instrumented.

Runs the same wing solve as ``examples/quickstart.py`` with a
:class:`repro.telemetry.TraceRecorder` attached, prints the measured
per-phase breakdown (inclusive and self time, call counts), checks
that the instrumented run is bitwise-identical to an uninstrumented
one, and dumps the validated trace JSON for CI diffing.

Run:  python examples/record_trace.py [--out TRACE_quickstart.json]
"""

import argparse

import numpy as np

from repro import NKSSolver, SolverConfig, wing_problem
from repro.core.config import PreconditionerConfig
from repro.telemetry import TraceRecorder, load_trace, write_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="TRACE_quickstart.json",
                        help="trace JSON output path")
    parser.add_argument("--steps", type=int, default=8,
                        help="pseudo-timestep budget")
    args = parser.parse_args()

    prob = wing_problem(11, 8, 6, alpha_deg=3.0)
    config = SolverConfig(
        matrix_free=True, jacobian_lag=2, max_steps=args.steps,
        precond=PreconditionerConfig(nparts=4, fill_level=1))
    q0 = prob.initial.flat()

    rec = TraceRecorder()
    report = NKSSolver(prob.disc, config, recorder=rec).solve(q0)
    print(f"solved: {report.num_steps} steps, "
          f"{report.total_linear_iterations} linear iterations, "
          f"reduction {report.final_reduction:.2e}\n")

    print(f"{'phase':<18} {'incl(s)':>9} {'self(s)':>9} {'calls':>6}")
    for phase in rec.phases():
        print(f"{phase:<18} {rec.phase_seconds(phase):>9.4f} "
              f"{rec.self_seconds(phase):>9.4f} "
              f"{rec.phase_calls(phase):>6d}")
    print("counters: " + ", ".join(
        f"{name}={rec.counter(name):g}" for name in rec.counters()))

    # Telemetry only reads the clock: identical numerics, guaranteed.
    plain = NKSSolver(prob.disc, config).solve(q0)
    assert np.array_equal(plain.final_state, report.final_state), \
        "instrumented run diverged from uninstrumented run"
    print("instrumented run bitwise-identical to uninstrumented: OK")

    path = write_trace(args.out, rec, meta={
        "experiment": "quickstart", "problem": prob.name,
        "steps": report.num_steps,
        "linear_its": report.total_linear_iterations})
    load_trace(path)   # re-validate what landed on disk
    print(f"trace written and validated: {path}")


if __name__ == "__main__":
    main()
