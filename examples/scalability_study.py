#!/usr/bin/env python3
"""Parallel scalability study (the paper's Table 3 / Fig. 1 analysis).

Runs the real NKS solver with increasing subdomain counts (measuring
the algorithmic iteration growth), then prices each run on the ASCI
Red machine model to decompose the parallel efficiency into
eta_alg x eta_impl and locate the scalability bottlenecks.

Run:  python examples/scalability_study.py
"""

from repro.experiments.table3 import run_table3


def main() -> None:
    sc = run_table3(procs=(2, 4, 8, 16, 32), size="medium", max_steps=5)
    print(sc.to_table().table())
    print()
    print(sc.to_fig1_table().table())

    last = sc.efficiency[-1]
    pct = sc.points[-1].timeline.category_percent()
    print(f"\nAt {last.nprocs} processors:")
    print(f"  eta_overall = {last.eta_overall:.2f} "
          f"= eta_alg ({last.eta_alg:.2f}) x eta_impl ({last.eta_impl:.2f})")
    print(f"  time shares: scatter {pct['scatter']:.1f}%, implicit sync "
          f"{pct['implicit_sync']:.1f}%, reductions {pct['reductions']:.1f}%")
    print("\nThe paper's reading holds: iteration growth (eta_alg) and the "
          "ghost-point\nscatters + load-imbalance waits (eta_impl) are what "
          "retard scaling —\nglobal reductions are harmless.")


if __name__ == "__main__":
    main()
