"""Parallel-execution models: plans, work, timeline, efficiency, hybrid."""

import numpy as np
import pytest

from repro.parallel import (build_exchange_plan, build_rank_work,
                            efficiency_decomposition, hybrid_flux_times,
                            network_from_machine, simulate_solve)
from repro.parallel.netmodel import NetworkModel
from repro.partition import kway_partition
from repro.perfmodel import ASCI_RED_PPRO


@pytest.fixture(scope="module")
def partitioned(medium_mesh):
    g = medium_mesh.vertex_graph()
    labels = kway_partition(g, 8, seed=0)
    return g, labels


class TestExchangePlan:
    def test_owned_covers_graph(self, partitioned):
        g, labels = partitioned
        plan = build_exchange_plan(g, labels)
        assert plan.owned.sum() == g.num_vertices

    def test_ghosts_are_cut_neighbors(self, partitioned):
        g, labels = partitioned
        plan = build_exchange_plan(g, labels)
        assert np.all(plan.ghosts > 0)       # every part has a boundary
        assert plan.cut_edges > 0

    def test_sends_equal_ghost_copies(self, partitioned):
        g, labels = partitioned
        plan = build_exchange_plan(g, labels)
        assert plan.sends.sum() == plan.ghosts.sum()

    def test_single_part_no_comm(self, medium_mesh):
        g = medium_mesh.vertex_graph()
        plan = build_exchange_plan(g, np.zeros(g.num_vertices, dtype=np.int64))
        assert plan.ghosts.sum() == 0
        assert plan.cut_edges == 0
        assert plan.max_messages == 0

    def test_ghost_fraction_grows_with_parts(self, medium_mesh):
        """The paper's surface-to-volume law: more subdomains => a
        larger fraction of shared points (Sec. 2.3.1)."""
        g = medium_mesh.vertex_graph()
        fracs = []
        for p in (4, 32):
            plan = build_exchange_plan(g, kway_partition(g, p, seed=0))
            fracs.append(plan.ghost_fraction.mean())
        assert fracs[1] > fracs[0]

    def test_total_bytes_scale_with_ncomp(self, partitioned):
        g, labels = partitioned
        plan = build_exchange_plan(g, labels)
        assert (plan.total_bytes_per_exchange(4)
                == 2 * plan.total_bytes_per_exchange(2))


class TestRankWork:
    def test_edge_partition_identity(self, partitioned, medium_mesh):
        g, labels = partitioned
        works = build_rank_work(g, labels, 4)
        total_interior = sum(w.interior_edges for w in works)
        total_halo = sum(w.halo_edges for w in works)
        # Each cut edge is counted once per side.
        assert total_interior + total_halo // 2 == medium_mesh.num_edges
        assert all(w.local_edges == w.interior_edges + w.halo_edges
                   for w in works)

    def test_flops_positive_and_scale(self, partitioned):
        g, labels = partitioned
        w4 = build_rank_work(g, labels, 4)
        w5 = build_rank_work(g, labels, 5)
        assert all(w.flux_flops > 0 for w in w4)
        assert w5[0].flux_flops > w4[0].flux_flops
        assert w5[0].spmv_flops > w4[0].spmv_flops

    def test_precond_precision_lever(self, partitioned):
        g, labels = partitioned
        w8 = build_rank_work(g, labels, 4, precond_value_bytes=8)
        w4 = build_rank_work(g, labels, 4, precond_value_bytes=4)
        assert w4[0].pcapply_traffic < w8[0].pcapply_traffic
        assert w4[0].pcapply_flops == w8[0].pcapply_flops

    def test_fill_ratio_lever(self, partitioned):
        g, labels = partitioned
        lo = build_rank_work(g, labels, 4, fill_ratio=1.0)
        hi = build_rank_work(g, labels, 4, fill_ratio=3.0)
        assert hi[0].pcapply_flops > lo[0].pcapply_flops


class TestNetworkModel:
    def test_scatter_time_components(self):
        net = NetworkModel(alpha=1e-5, beta=1e8, pack_bw=1e7)
        t = net.scatter_time(4, 1e6)
        assert t == pytest.approx(4e-5 + 0.1)

    def test_allreduce_log_scaling(self):
        net = NetworkModel(alpha=1e-5, beta=1e8, pack_bw=1e7)
        assert net.allreduce_time(1) == 0.0
        t128 = net.allreduce_time(128)
        t1024 = net.allreduce_time(1024)
        assert t1024 == pytest.approx(t128 * 10 / 7)

    def test_from_machine_effective_bw_order(self):
        """pack_efficiency default reproduces the paper's ~4 MB/s
        order of magnitude on ASCI Red."""
        net = network_from_machine(ASCI_RED_PPRO)
        assert 1e6 < net.pack_bw < 2e7


class TestSimulate:
    def _run(self, g, labels, machine=ASCI_RED_PPRO, its=None):
        plan = build_exchange_plan(g, labels)
        works = build_rank_work(g, labels, 4)
        net = network_from_machine(machine)
        return simulate_solve(works, plan, machine, net,
                              linear_its_per_step=its or [15] * 8)

    def test_wall_decreases_with_parts(self, medium_mesh):
        g = medium_mesh.vertex_graph()
        walls = [self._run(g, kway_partition(g, p, seed=0)).total_wall
                 for p in (4, 16)]
        assert walls[1] < walls[0]

    def test_scatter_fraction_grows_with_parts(self, medium_mesh):
        """Table 3's scatter column: 3% -> 6% as P grows."""
        g = medium_mesh.vertex_graph()
        pct = [self._run(g, kway_partition(g, p, seed=0)).category_percent()
               for p in (4, 32)]
        assert pct[1]["scatter"] > pct[0]["scatter"]

    def test_imbalance_creates_implicit_sync(self, medium_mesh):
        g = medium_mesh.vertex_graph()
        n = g.num_vertices
        balanced = np.repeat(np.arange(4), n // 4 + 1)[:n]
        skewed = np.zeros(n, dtype=np.int64)
        skewed[: n // 10] = 1
        skewed[n // 10: n // 5] = 2
        skewed[n // 5: n // 4] = 3
        t_bal = self._run(g, balanced).category_totals()["implicit_sync"]
        t_skew = self._run(g, skewed).category_totals()["implicit_sync"]
        assert t_skew > 2 * t_bal

    def test_more_iterations_more_time(self, partitioned):
        g, labels = partitioned
        t1 = self._run(g, labels, its=[10] * 5).total_wall
        t2 = self._run(g, labels, its=[30] * 5).total_wall
        assert t2 > t1

    def test_effective_bandwidth_below_wire(self, partitioned):
        g, labels = partitioned
        tl = self._run(g, labels)
        eff = tl.effective_scatter_bw_per_rank()
        assert 0 < eff < ASCI_RED_PPRO.net_beta


class TestEfficiency:
    def test_paper_table3_numbers(self):
        """Feeding Table 3's published (P, its, time) rows must return
        the paper's own efficiency columns."""
        rows = efficiency_decomposition([
            (128, 22, 2039.0), (256, 24, 1144.0), (512, 26, 638.0),
            (768, 27, 441.0), (1024, 29, 362.0)])
        eta = {r.nprocs: r for r in rows}
        assert eta[128].speedup == pytest.approx(1.0)
        assert eta[256].eta_overall == pytest.approx(0.89, abs=0.01)
        assert eta[512].eta_overall == pytest.approx(0.80, abs=0.01)
        assert eta[1024].eta_overall == pytest.approx(0.70, abs=0.01)
        assert eta[1024].eta_alg == pytest.approx(0.76, abs=0.01)
        assert eta[1024].eta_impl == pytest.approx(0.93, abs=0.015)

    def test_reference_row_is_unity(self):
        rows = efficiency_decomposition([(8, 10, 100.0), (16, 12, 60.0)])
        assert rows[0].eta_overall == 1.0
        assert rows[0].eta_alg == 1.0

    def test_empty(self):
        assert efficiency_decomposition([]) == []


class TestHybrid:
    def test_table5_shape(self, medium_mesh):
        """OpenMP threads beat 2-proc MPI at scale (halo redundancy)."""
        g = medium_mesh.vertex_graph()
        nodes = 8
        l1 = kway_partition(g, nodes, seed=0)
        l2 = kway_partition(g, 2 * nodes, seed=0)
        cmp = hybrid_flux_times(g, l1, l2, ASCI_RED_PPRO)
        # Both dual-processor modes beat single.
        assert cmp.t_hybrid_2 < cmp.t_mpi_1
        assert cmp.t_mpi_2 < cmp.t_mpi_1
        # The hybrid advantage comes from avoided halo work; with this
        # many subdomains on a small mesh the halo penalty is large.
        assert cmp.t_hybrid_2 < cmp.t_mpi_2 * 1.2

    def test_mismatched_parts_raise(self, medium_mesh):
        g = medium_mesh.vertex_graph()
        l1 = kway_partition(g, 4, seed=0)
        with pytest.raises(ValueError):
            hybrid_flux_times(g, l1, l1, ASCI_RED_PPRO)
