"""Spectral partitioning, Sloan ordering, and colored FD Jacobians."""

import numpy as np
import pytest

from repro.euler import (distance2_vertex_coloring, fd_jacobian,
                         fd_jacobian_colored, fd_jacobian_ref,
                         wing_problem)
from repro.graph import (envelope_profile, graph_from_edges,
                         rcm_ordering, sloan_ordering)
from repro.mesh import shuffle_vertices, unit_cube_mesh
from repro.partition import (edge_cut, fiedler_vector, load_imbalance,
                             spectral_bisect,
                             spectral_partition)


class TestFiedler:
    def test_orthogonal_to_constants(self, medium_graph):
        f = fiedler_vector(medium_graph, seed=0)
        assert abs(f.mean()) < 1e-8
        assert np.linalg.norm(f) == pytest.approx(1.0, rel=1e-6)

    def test_matches_scipy_eigsh(self):
        """The from-scratch Fiedler value agrees with scipy's (oracle)."""
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla

        g = unit_cube_mesh(5, jitter=0.2, seed=1).vertex_graph()
        f = fiedler_vector(g, tol=1e-10, seed=0)
        edges = g.edge_list()
        n = g.num_vertices
        w = np.ones(edges.shape[0])
        a = sp.coo_matrix((w, (edges[:, 0], edges[:, 1])), shape=(n, n))
        a = a + a.T
        lap = sp.diags(np.asarray(a.sum(axis=1)).ravel()) - a
        vals = spla.eigsh(lap.tocsc(), k=2, sigma=-1e-8,
                          return_eigenvectors=False)
        lam2_ref = float(np.sort(vals)[1])
        lam2_ours = float(f @ _lap_matvec(g, f))
        assert lam2_ours == pytest.approx(lam2_ref, rel=0.05)

    def test_path_graph_sign_structure(self):
        """On a path, the Fiedler vector is monotone: the sign split is
        the midpoint cut."""
        n = 16
        edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
        g = graph_from_edges(n, edges)
        second = spectral_bisect(g, seed=0)
        # The two halves are contiguous runs.
        changes = int(np.sum(np.diff(second.astype(int)) != 0))
        assert changes == 1
        assert abs(int(second.sum()) - n // 2) <= 1


def _lap_matvec(g, x):
    from repro.partition.spectral import _laplacian_matvec
    return _laplacian_matvec(g, x)


class TestSpectralPartition:
    def test_valid_partition(self, medium_graph):
        for p in (2, 4, 6):
            labels = spectral_partition(medium_graph, p, seed=0)
            assert set(np.unique(labels)) == set(range(p))

    def test_balance(self, medium_graph):
        labels = spectral_partition(medium_graph, 8, seed=0)
        assert load_imbalance(labels) <= 1.1

    def test_cut_quality_competitive(self, medium_graph):
        """Spectral cuts are competitive with the multilevel k-way ones
        (classically they are often better on smooth geometries)."""
        from repro.partition import kway_partition
        cs = edge_cut(medium_graph, spectral_partition(medium_graph, 8,
                                                       seed=0))
        ck = edge_cut(medium_graph, kway_partition(medium_graph, 8, seed=0))
        assert cs < 1.4 * ck

    def test_validation(self, medium_graph):
        with pytest.raises(ValueError):
            spectral_partition(medium_graph, 0)


class TestSloan:
    @pytest.fixture(scope="class")
    def shuffled_graph(self):
        return shuffle_vertices(unit_cube_mesh(8, jitter=0.2),
                                seed=4).vertex_graph()

    def test_is_permutation(self, shuffled_graph):
        perm = sloan_ordering(shuffled_graph)
        assert np.array_equal(np.sort(perm),
                              np.arange(shuffled_graph.num_vertices))

    def test_reduces_profile_strongly(self, shuffled_graph):
        perm = sloan_ordering(shuffled_graph)
        assert (envelope_profile(shuffled_graph, perm)
                < envelope_profile(shuffled_graph) / 3)

    def test_competitive_with_rcm_on_profile(self, shuffled_graph):
        ps = envelope_profile(shuffled_graph,
                              sloan_ordering(shuffled_graph))
        pr = envelope_profile(shuffled_graph, rcm_ordering(shuffled_graph))
        assert ps < 1.2 * pr

    def test_disconnected_graph(self):
        g = graph_from_edges(6, [[0, 1], [1, 2], [3, 4], [4, 5]])
        perm = sloan_ordering(g)
        assert np.array_equal(np.sort(perm), np.arange(6))


class TestColoredFDJacobian:
    def test_coloring_is_distance2_proper(self, small_mesh):
        g = small_mesh.vertex_graph()
        colors = distance2_vertex_coloring(g)
        # Neighbours differ...
        e = g.edge_list()
        assert np.all(colors[e[:, 0]] != colors[e[:, 1]])
        # ...and so do vertices sharing a neighbour.
        for v in range(0, g.num_vertices, 7):
            nbrs = g.neighbors(v)
            ring2 = np.unique(np.concatenate(
                [g.neighbors(int(u)) for u in nbrs])) if nbrs.size else []
            for w in ring2:
                if w != v:
                    assert colors[w] != colors[v]

    def test_far_fewer_colors_than_vertices(self, medium_graph):
        colors = distance2_vertex_coloring(medium_graph)
        assert colors.max() + 1 < medium_graph.num_vertices / 5

    def test_matches_brute_force_fd(self, rng):
        prob = wing_problem(5, 4, 4, second_order=False)
        disc = prob.disc
        q = prob.initial.flat() + 0.01 * rng.standard_normal(
            prob.num_unknowns)
        jc = fd_jacobian_colored(disc, q).to_csr().to_dense()
        eps = np.sqrt(np.finfo(float).eps) * (1 + np.abs(q).max())
        r0 = disc.residual(q, second_order=False)
        for c in range(0, q.size, 13):    # spot-check columns
            qp = q.copy()
            qp[c] += eps
            col = (disc.residual(qp, second_order=False) - r0) / eps
            assert np.allclose(jc[:, c], col, atol=1e-12)

    def test_close_to_analytical(self, rng):
        """FD (exact) vs analytical (frozen dissipation): small gap."""
        prob = wing_problem(5, 4, 4, second_order=False)
        q = prob.initial.flat() + 0.01 * rng.standard_normal(
            prob.num_unknowns)
        jc = fd_jacobian_colored(prob.disc, q).to_csr().to_dense()
        ja = prob.disc.assemble_jacobian(q).to_csr().to_dense()
        assert np.abs(jc - ja).max() / np.abs(jc).max() < 0.02

    def test_second_order_jacobian_available(self, rng):
        """The colored FD path also differentiates the 2nd-order
        residual — the Jacobian the analytical assembly cannot build."""
        prob = wing_problem(5, 4, 4)
        q = prob.initial.flat() + 0.01 * rng.standard_normal(
            prob.num_unknowns)
        j2 = fd_jacobian_colored(prob.disc, q, second_order=True)
        v = rng.standard_normal(q.size)
        jv_op = prob.disc.jacobian_operator(q, second_order=True).matvec(v)
        rel = (np.linalg.norm(j2.to_csr() @ v - jv_op)
               / np.linalg.norm(jv_op))
        # NOTE: the 2nd-order residual couples distance-2 vertices
        # through the gradients, which the stencil pattern truncates;
        # agreement is approximate by design.
        assert rel < 0.35


class TestVectorizedFDJacobian:
    """fd_jacobian (fancy-indexed scatter) vs fd_jacobian_ref (loop)."""

    def test_bitwise_equal_to_ref(self, rng):
        prob = wing_problem(5, 4, 4, second_order=False)
        q = prob.initial.flat() + 0.01 * rng.standard_normal(
            prob.num_unknowns)
        fast = fd_jacobian(prob.disc, q)
        ref = fd_jacobian_ref(prob.disc, q)
        assert np.array_equal(fast.indptr, ref.indptr)
        assert np.array_equal(fast.indices, ref.indices)
        # Same differences written to the same slots: exact equality.
        assert fast.data.dtype == ref.data.dtype == np.float64
        assert np.array_equal(fast.data, ref.data)

    def test_bitwise_equal_second_order_and_eps(self, rng):
        prob = wing_problem(4, 4, 4)
        q = prob.initial.flat() + 0.01 * rng.standard_normal(
            prob.num_unknowns)
        colors = distance2_vertex_coloring(prob.mesh.vertex_graph())
        fast = fd_jacobian(prob.disc, q, second_order=True, eps=1e-7,
                           colors=colors)
        ref = fd_jacobian_ref(prob.disc, q, second_order=True, eps=1e-7,
                              colors=colors)
        assert np.array_equal(fast.data, ref.data)

    def test_colored_alias_is_fast_path(self):
        assert fd_jacobian_colored is fd_jacobian
