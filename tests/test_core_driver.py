"""Integration tests: the full ΨNKS solve loop."""

import numpy as np
import pytest

from repro.core import NKSSolver, SolverConfig
from repro.core.config import KrylovConfig, PreconditionerConfig
from repro.euler import duct_problem, wing_problem
from repro.solvers.ptc import PTCConfig


@pytest.fixture(scope="module")
def wing():
    return wing_problem(7, 5, 4)


def _solve(prob, **kw):
    defaults = dict(ptc=PTCConfig(cfl0=10.0), max_steps=30,
                    target_reduction=1e-6, matrix_free=True)
    defaults.update(kw)
    cfg = SolverConfig(**defaults)
    return NKSSolver(prob.disc, cfg).solve(prob.initial.flat())


class TestConvergence:
    def test_incompressible_wing_converges(self, wing):
        rep = _solve(wing)
        assert rep.converged
        assert rep.final_reduction <= 1e-6
        assert rep.num_steps < 25

    def test_compressible_wing_converges(self):
        prob = wing_problem(6, 4, 4, compressible=True, mach=0.4)
        rep = _solve(prob, ptc=PTCConfig(cfl0=5.0), target_reduction=1e-5,
                     max_steps=40)
        assert rep.converged

    def test_duct_trivially_converged(self):
        prob = duct_problem(4)
        rep = _solve(prob)
        # Freestream is the exact solution: one step, zero work.
        assert rep.converged
        assert rep.num_steps == 1
        assert rep.total_linear_iterations == 0

    def test_converged_state_has_zero_residual(self, wing):
        rep = _solve(wing, target_reduction=1e-8)
        r = wing.disc.residual(rep.final_state)
        assert np.linalg.norm(r) <= 1e-8 * rep.fnorm0 * 1.01

    def test_assembled_operator_mode(self, wing):
        """Defect-correction mode (assembled 1st-order J for the
        operator) converges too, just more slowly per step."""
        rep = _solve(wing, matrix_free=False, max_steps=60,
                     target_reduction=1e-5)
        assert rep.converged

    def test_wall_produces_lift_like_pressure(self, wing):
        """Physical sanity: after convergence the wall pressure differs
        from freestream (the wing patch disturbs the flow)."""
        rep = _solve(wing)
        q = rep.final_state.reshape(-1, 4)
        bc = wing.disc.bc
        wall_p = q[bc.vertices[bc.wall_mask], 0]
        assert np.abs(wall_p).max() > 1e-3


class TestDiagnostics:
    def test_residual_history_monotone_ish(self, wing):
        rep = _solve(wing)
        r = rep.residual_history
        # PTC allows transient bumps; demand overall decrease and no
        # more than one local increase.
        assert r[-1] < r[0]
        assert int((np.diff(r) > 0).sum()) <= 1

    def test_cfl_history_grows(self, wing):
        rep = _solve(wing)
        cfl = rep.cfl_history
        assert cfl[0] == pytest.approx(10.0)
        assert cfl[-1] > cfl[0]

    def test_phase_times_recorded(self, wing):
        rep = _solve(wing)
        times = rep.phase_times()
        assert times["flux"] > 0
        assert times["pc_setup"] > 0
        assert rep.time_per_step > 0

    def test_higher_initial_cfl_fewer_steps(self, wing):
        """Fig. 5's effect: for smooth flows, a larger initial CFL
        converges in fewer pseudo-timesteps."""
        slow = _solve(wing, ptc=PTCConfig(cfl0=1.0), max_steps=60)
        fast = _solve(wing, ptc=PTCConfig(cfl0=50.0), max_steps=60)
        assert fast.converged
        assert fast.num_steps < slow.num_steps


class TestPreconditionerKnobs:
    def test_multidomain_converges(self, wing):
        rep = _solve(wing, precond=PreconditionerConfig(nparts=4,
                                                        fill_level=0))
        assert rep.converged

    def test_more_subdomains_more_linear_its(self, wing):
        its = {}
        for p in (1, 8):
            rep = _solve(wing, precond=PreconditionerConfig(
                nparts=p, fill_level=0), max_steps=25)
            assert rep.converged
            its[p] = rep.total_linear_iterations
        assert its[8] >= its[1]

    def test_fp32_preconditioner_same_convergence(self, wing):
        r64 = _solve(wing, precond=PreconditionerConfig(
            nparts=4, fill_level=1, precision="double"))
        r32 = _solve(wing, precond=PreconditionerConfig(
            nparts=4, fill_level=1, precision="single"))
        assert r32.converged
        assert abs(r32.num_steps - r64.num_steps) <= 1
        assert (abs(r32.total_linear_iterations
                    - r64.total_linear_iterations)
                <= 0.15 * r64.total_linear_iterations + 2)

    def test_jacobian_lag(self, wing):
        rep = _solve(wing, jacobian_lag=3)
        assert rep.converged
        # Lagged refresh: pc_setup happened on fewer steps.
        setups = sum(1 for s in rep.steps if s.time_pcsetup > 0)
        assert setups <= (rep.num_steps + 2) // 3 + 1

    def test_given_partition(self, wing):
        labels = np.zeros(wing.mesh.num_vertices, dtype=np.int64)
        labels[wing.mesh.num_vertices // 2:] = 1
        rep = _solve(wing, precond=PreconditionerConfig(
            nparts=2, partitioner="given", labels=labels))
        assert rep.converged

    def test_unknown_partitioner_raises(self, wing):
        with pytest.raises(ValueError):
            NKSSolver(wing.disc, SolverConfig(
                precond=PreconditionerConfig(nparts=2,
                                             partitioner="magic")))


class TestConfigValidation:
    def test_bad_max_steps(self):
        with pytest.raises(ValueError):
            SolverConfig(max_steps=0)

    def test_bad_reduction(self):
        with pytest.raises(ValueError):
            SolverConfig(target_reduction=0.0)

    def test_bad_lag(self):
        with pytest.raises(ValueError):
            SolverConfig(jacobian_lag=0)

    def test_krylov_enum_coercion(self):
        cfg = KrylovConfig(orthogonalization="cgs")
        from repro.solvers.gmres import Orthogonalization
        assert cfg.orthogonalization is Orthogonalization.CGS
