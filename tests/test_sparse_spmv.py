"""SpMV kernel variants and operation-count accounting."""

import numpy as np
import pytest

from repro.sparse import (CSRMatrix, spmv_bsr_numpy, spmv_cost,
                          spmv_csr, spmv_csr_loop, spmv_csr_numpy,
                          spmv_csr_ref)
from repro.sparse.precision import StoragePrecision, storage_dtype, traffic_ratio


@pytest.fixture(scope="module")
def matrix(rng):
    a = rng.random((40, 40))
    a[a < 0.8] = 0.0
    a += np.eye(40) * 3
    return CSRMatrix.from_dense(a)


class TestKernels:
    def test_loop_matches_numpy(self, matrix, rng):
        x = rng.random(40)
        assert np.allclose(spmv_csr_loop(matrix, x),
                           spmv_csr_numpy(matrix, x))

    def test_ref_oracle_matches_vectorised(self, matrix, rng):
        """The R001 contract pair: spmv_csr against its *_ref oracle."""
        x = rng.random(40)
        np.testing.assert_array_equal(spmv_csr(matrix, x),
                                      spmv_csr_ref(matrix, x))

    def test_row_subset_matches_full_product(self, matrix, rng):
        x = rng.random(40)
        rows = np.array([3, 7, 7, 0, 39], dtype=np.int64)
        np.testing.assert_allclose(spmv_csr(matrix, x, rows=rows),
                                   spmv_csr_ref(matrix, x)[rows])

    def test_bsr_kernel(self, rng):
        from tests.test_sparse_bsr import random_bsr
        m = random_bsr(6, 3, 0.5, 1)
        x = rng.random(18)
        assert np.allclose(spmv_bsr_numpy(m, x), m.to_csr() @ x)


class TestCost:
    def test_csr_counts(self, matrix):
        c = spmv_cost(matrix)
        assert c.flops == 2 * matrix.nnz
        assert c.matrix_words == matrix.nnz
        assert c.index_words == matrix.nnz + matrix.nrows + 1
        assert c.vector_loads == matrix.nnz
        assert c.vector_stores == matrix.nrows

    def test_bsr_fewer_index_words(self):
        from tests.test_sparse_bsr import random_bsr
        m = random_bsr(8, 4, 0.5, 2)
        cb = spmv_cost(m)
        cs = spmv_cost(m.to_csr())
        assert cb.flops == cs.flops
        assert cb.matrix_words == cs.matrix_words
        # Structural blocking: ~bs^2 fewer index loads (paper 2.1.2).
        assert cb.index_words < cs.index_words / 8

    def test_traffic_ordering(self, matrix):
        c = spmv_cost(matrix)
        assert c.min_traffic_bytes <= c.worst_traffic_bytes

    def test_intensity_low(self, matrix):
        """SpMV sits deep in the bandwidth-bound regime: < 0.25 flops
        per byte even with perfect reuse."""
        c = spmv_cost(matrix)
        assert c.intensity() < 0.25

    def test_fp32_values_halve_matrix_traffic(self, matrix):
        c64 = spmv_cost(matrix, value_bytes=8)
        c32 = spmv_cost(matrix, value_bytes=4)
        assert (c32.min_traffic_bytes - c32.index_words * 4) * 2 == \
            (c64.min_traffic_bytes - c64.index_words * 4)


class TestPrecision:
    def test_dtypes(self):
        assert storage_dtype("double") == np.float64
        assert storage_dtype(StoragePrecision.SINGLE) == np.float32

    def test_traffic_ratio(self):
        assert traffic_ratio("single") == 0.5
        assert traffic_ratio("double") == 1.0
