"""Cross-cutting hypothesis property tests over module boundaries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import box_mesh, unit_cube_mesh
from repro.partition import kway_partition, pmetis_partition
from repro.solvers import gmres
from repro.sparse import CSRMatrix, ilu_csr


def diag_dominant(n, density, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    thresh = np.quantile(np.abs(a), 1 - density)
    a[np.abs(a) < thresh] = 0.0
    a += np.eye(n) * (np.abs(a).sum(axis=1).max() + 1.0)
    return a


@settings(deadline=None, max_examples=20)
@given(st.integers(4, 16), st.floats(0.1, 0.5), st.integers(0, 1000))
def test_full_fill_ilu_is_direct_solver(n, density, seed):
    """ILU(n) == LU: solve error at machine precision for any
    diagonally dominant system."""
    a = diag_dominant(n, density, seed)
    m = CSRMatrix.from_dense(a)
    b = np.random.default_rng(seed).random(n)
    x = ilu_csr(m, n).solve(b)
    assert np.allclose(a @ x, b, atol=1e-8 * np.abs(b).max() + 1e-10)


@settings(deadline=None, max_examples=15)
@given(st.integers(5, 25), st.integers(0, 1000))
def test_gmres_solves_dominant_systems(n, seed):
    a = diag_dominant(n, 0.4, seed)
    b = np.random.default_rng(seed + 1).random(n)
    res = gmres(a, b, rtol=1e-10, restart=min(n, 20), maxiter=30 * n)
    assert res.converged
    assert np.allclose(a @ res.x, b, atol=1e-6)


@settings(deadline=None, max_examples=10)
@given(st.integers(2, 6), st.integers(0, 100))
def test_partitioners_deterministic(nparts, seed):
    g = unit_cube_mesh(5, jitter=0.2, seed=1).vertex_graph()
    for fn in (kway_partition, pmetis_partition):
        l1 = fn(g, nparts, seed=seed)
        l2 = fn(g, nparts, seed=seed)
        assert np.array_equal(l1, l2)


@settings(deadline=None, max_examples=8)
@given(st.integers(2, 5), st.integers(0, 50))
def test_distributed_residual_any_partition(nparts, seed):
    """SPMD execution equals sequential for arbitrary valid labelings
    (even fragmented random ones)."""
    from repro.euler import duct_problem
    from repro.parallel import SPMDLayout, distributed_residual

    prob = duct_problem(4, jitter=0.2, seed=1, second_order=False)
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, nparts, prob.mesh.num_vertices)
    labels[:nparts] = np.arange(nparts)      # no empty rank
    layout = SPMDLayout.build(prob.mesh.edges, labels)
    q = prob.initial.flat() + 0.1 * rng.standard_normal(
        prob.disc.num_unknowns)
    r_dist = distributed_residual(prob.disc, layout, q)
    r_seq = prob.disc.residual(q, second_order=False)
    assert np.allclose(r_dist, r_seq, atol=1e-13)


@settings(deadline=None, max_examples=10)
@given(st.integers(2, 4), st.integers(2, 4), st.integers(2, 4))
def test_trace_deterministic_and_positive(nx, ny, nz):
    from repro.memory import flux_loop_trace

    m = box_mesh(nx, ny, nz, jitter=0.2, seed=3)
    t1 = flux_loop_trace(m.edges, m.num_vertices, 4)
    t2 = flux_loop_trace(m.edges, m.num_vertices, 4)
    assert np.array_equal(t1, t2)
    assert t1.min() > 0


@settings(deadline=None, max_examples=15)
@given(st.integers(1, 5), st.integers(10, 60), st.integers(0, 100))
def test_spmv_cost_traffic_scales_with_values(bs, nb, seed):
    """BSR min traffic is below CSR min traffic for the same matrix
    whenever bs > 1 (the index-savings invariant)."""
    from repro.sparse import BSRMatrix, spmv_cost

    nbrows = max(nb // bs, 2)
    rng = np.random.default_rng(seed)
    mask = rng.random((nbrows, nbrows)) < 0.4
    np.fill_diagonal(mask, True)
    br, bc = np.nonzero(mask)
    blocks = rng.standard_normal((br.size, bs, bs))
    m = BSRMatrix.from_block_coo(br, bc, blocks, (nbrows, nbrows))
    cb = spmv_cost(m)
    cs = spmv_cost(m.to_csr())
    if bs == 1:
        assert cb.min_traffic_bytes == cs.min_traffic_bytes
    else:
        assert cb.min_traffic_bytes < cs.min_traffic_bytes
    assert cb.flops == cs.flops


@settings(deadline=None, max_examples=10)
@given(st.floats(1.0, 50.0), st.integers(1, 30))
def test_timestep_shift_positive_any_cfl(cfl, seed):
    from repro.euler import wing_problem

    prob = wing_problem(5, 4, 4, seed=seed % 3)
    rng = np.random.default_rng(seed)
    q = prob.initial.flat() + 0.05 * rng.standard_normal(
        prob.disc.num_unknowns)
    shift = prob.disc.timestep_shift(q, cfl)
    assert np.all(shift > 0)
    assert np.all(np.isfinite(shift))
