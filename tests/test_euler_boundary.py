"""Boundary condition classification and weak BC fluxes."""

import numpy as np
import pytest

from repro.euler import (BoundaryCondition, classify_box_boundary,
                         incompressible_freestream, wing_problem)
from repro.euler.incompressible import IncompressibleEuler
from repro.mesh import compute_dual_metrics


class TestClassification:
    def test_all_farfield_without_region(self, small_mesh, small_dual):
        bc = classify_box_boundary(small_mesh, small_dual, wall_region=None)
        assert bc.num_wall == 0
        assert np.all(bc.farfield_mask)

    def test_wall_patch_on_floor(self, small_mesh, small_dual):
        bc = classify_box_boundary(small_mesh, small_dual,
                                   wall_region=((0.0, 1.0), (0.0, 1.0)))
        walls = bc.vertices[bc.wall_mask]
        assert walls.size > 0
        assert np.all(np.abs(small_mesh.coords[walls, 2]
                             - small_mesh.coords[:, 2].min()) < 1e-9)

    def test_patch_restricts_wall(self, small_mesh, small_dual):
        bc_full = classify_box_boundary(small_mesh, small_dual,
                                        wall_region=((0.0, 1.0), (0.0, 1.0)))
        bc_patch = classify_box_boundary(small_mesh, small_dual,
                                         wall_region=((0.3, 0.7), (0.3, 0.7)))
        assert 0 < bc_patch.num_wall < bc_full.num_wall

    def test_vertices_cover_boundary(self, small_mesh, small_dual):
        bc = classify_box_boundary(small_mesh, small_dual)
        assert np.array_equal(np.sort(bc.vertices),
                              small_dual.boundary_vertices)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            BoundaryCondition(vertices=np.array([0, 1]),
                              normals=np.zeros((3, 3)),
                              kinds=np.array([0, 1]))


class TestWallBC:
    def test_wall_flux_blocks_mass(self):
        """A slip wall transmits no mass flux regardless of the state."""
        prob = wing_problem(5, 4, 4)
        disc = prob.disc
        rng = np.random.default_rng(0)
        q = rng.random((10, 4))
        n = rng.random((10, 3))
        f = disc._wall_flux(q, n)
        assert np.allclose(f[:, 0], 0.0)

    def test_wall_jacobian_matches_fd(self):
        prob = wing_problem(5, 4, 4)
        disc = prob.disc
        rng = np.random.default_rng(1)
        q = rng.random((6, 4))
        n = rng.random((6, 3))
        ja = disc._wall_flux_jacobian(q, n)
        eps = 1e-7
        for c in range(4):
            qp = q.copy()
            qp[:, c] += eps
            fd = (disc._wall_flux(qp, n) - disc._wall_flux(q, n)) / eps
            assert np.allclose(ja[:, :, c], fd, atol=1e-6)

    def test_compressible_wall_jacobian_matches_fd(self):
        prob = wing_problem(5, 4, 4, compressible=True)
        disc = prob.disc
        rng = np.random.default_rng(2)
        q = np.zeros((6, 5))
        q[:, 0] = 1 + 0.2 * rng.random(6)
        q[:, 1:4] = 0.2 * rng.random((6, 3))
        q[:, 4] = 2.5 + rng.random(6)
        n = rng.random((6, 3))
        ja = disc._wall_flux_jacobian(q, n)
        eps = 1e-7
        for c in range(5):
            qp = q.copy()
            qp[:, c] += eps
            fd = (disc._wall_flux(qp, n) - disc._wall_flux(q, n)) / eps
            assert np.allclose(ja[:, :, c], fd, atol=1e-5)


class TestFarfieldBC:
    def test_farfield_absorbs_freestream(self, small_mesh, small_dual):
        """At the freestream state the farfield flux is the plain
        analytic flux (no dissipation term)."""
        bc = classify_box_boundary(small_mesh, small_dual, wall_region=None)
        fs = incompressible_freestream(small_mesh.num_vertices)
        disc = IncompressibleEuler(small_mesh, bc, small_dual, farfield=fs)
        q = fs.q
        r = np.zeros_like(q)
        disc._add_boundary_residual(q, r)
        ref = disc._flux(q[bc.vertices], bc.normals)
        acc = np.zeros_like(q)
        np.add.at(acc, bc.vertices, ref)
        assert np.allclose(r, acc)

    def test_missing_farfield_state_raises(self, small_mesh, small_dual):
        bc = classify_box_boundary(small_mesh, small_dual, wall_region=None)
        disc = IncompressibleEuler(small_mesh, bc, small_dual)
        with pytest.raises(RuntimeError):
            disc.residual(np.zeros(disc.num_unknowns))

    def test_permuted_bc_consistent(self, small_mesh, small_dual, rng):
        """Relabelling vertices + relabelling the BC commutes with the
        residual evaluation."""
        from repro.mesh import compute_dual_metrics
        bc = classify_box_boundary(small_mesh, small_dual, wall_region=None)
        fs = incompressible_freestream(small_mesh.num_vertices)
        disc = IncompressibleEuler(small_mesh, bc, small_dual, farfield=fs,
                                   second_order=False)
        q = fs.flat() + 0.05 * rng.standard_normal(disc.num_unknowns)
        r = disc.residual(q).reshape(-1, 4)

        perm = rng.permutation(small_mesh.num_vertices)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        mesh2 = small_mesh.permuted(perm)
        dual2 = compute_dual_metrics(mesh2)
        bc2 = classify_box_boundary(mesh2, dual2, wall_region=None)
        disc2 = IncompressibleEuler(mesh2, bc2, dual2, farfield=fs,
                                    second_order=False)
        q2 = q.reshape(-1, 4)[perm]
        r2 = disc2.residual(q2.ravel()).reshape(-1, 4)
        assert np.allclose(r2, r[perm], atol=1e-11)
