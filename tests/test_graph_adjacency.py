"""Unit tests for the CSR graph container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, graph_from_edges, graph_from_csr


def _path_graph(n):
    edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    return graph_from_edges(n, edges)


class TestConstruction:
    def test_from_edges_basic(self):
        g = graph_from_edges(4, [[0, 1], [1, 2], [2, 3], [0, 3]])
        assert g.num_vertices == 4
        assert g.num_edges == 4
        assert sorted(g.neighbors(0).tolist()) == [1, 3]
        assert g.degree(1) == 2

    def test_from_edges_merges_duplicates(self):
        g = graph_from_edges(3, [[0, 1], [1, 0], [0, 1]])
        assert g.num_edges == 1
        # Edge weights accumulate on merge.
        assert g.ewgt[g.xadj[0]] == 3

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            graph_from_edges(3, [[1, 1]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            graph_from_edges(3, [[0, 5]])

    def test_bad_xadj_rejected(self):
        with pytest.raises(ValueError):
            Graph(xadj=np.array([0, 2]), adjncy=np.array([1]))

    def test_isolated_vertices(self):
        g = graph_from_edges(5, [[0, 1]])
        assert g.degree(4) == 0
        assert g.num_edges == 1

    def test_from_csr_drops_diagonal(self):
        indptr = np.array([0, 2, 4])
        indices = np.array([0, 1, 0, 1])
        g = graph_from_csr(indptr, indices)
        assert g.num_edges == 1
        assert g.neighbors(0).tolist() == [1]


class TestOperations:
    def test_edge_list_roundtrip(self, small_graph):
        edges = small_graph.edge_list()
        g2 = graph_from_edges(small_graph.num_vertices, edges)
        assert np.array_equal(g2.xadj, small_graph.xadj)
        assert np.array_equal(g2.adjncy, small_graph.adjncy)

    def test_symmetry(self, small_graph):
        assert small_graph.validate_symmetric()

    def test_degrees_sum(self, small_graph):
        assert small_graph.degrees().sum() == 2 * small_graph.num_edges

    def test_subgraph_degrees(self):
        g = _path_graph(6)
        sub, vmap = g.subgraph(np.array([0, 1, 2]))
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert np.array_equal(vmap, [0, 1, 2])

    def test_subgraph_excludes_external_edges(self):
        g = _path_graph(6)
        sub, _ = g.subgraph(np.array([1, 3, 5]))   # pairwise nonadjacent
        assert sub.num_edges == 0

    def test_permute_roundtrip(self, small_graph, rng):
        perm = rng.permutation(small_graph.num_vertices)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        back = small_graph.permute(perm).permute(inv)
        assert np.array_equal(back.edge_list(), small_graph.edge_list())

    def test_permute_preserves_degree_multiset(self, small_graph, rng):
        perm = rng.permutation(small_graph.num_vertices)
        g2 = small_graph.permute(perm)
        assert sorted(g2.degrees()) == sorted(small_graph.degrees())

    def test_permute_invalid(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.permute(np.zeros(small_graph.num_vertices, dtype=int))


@settings(deadline=None, max_examples=30)
@given(st.integers(2, 20), st.data())
def test_property_edge_list_canonical(n, data):
    """Property: edge_list is sorted, unique, and low < high."""
    m = data.draw(st.integers(1, 3 * n))
    pairs = data.draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
        .filter(lambda t: t[0] != t[1]),
        min_size=1, max_size=m))
    g = graph_from_edges(n, np.array(pairs))
    el = g.edge_list()
    assert np.all(el[:, 0] < el[:, 1])
    assert np.unique(el, axis=0).shape == el.shape
    assert g.validate_symmetric()
