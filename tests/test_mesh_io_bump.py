"""Mesh serialisation and the transonic bump geometry."""

import numpy as np
import pytest

from repro.mesh import (bump_mesh, compute_dual_metrics, load_mesh,
                        save_mesh, unit_cube_mesh)


class TestMeshIO:
    def test_roundtrip_exact(self, tmp_path, small_mesh):
        p = save_mesh(small_mesh, tmp_path / "m")
        m2 = load_mesh(p)
        assert np.array_equal(m2.coords, small_mesh.coords)
        assert np.array_equal(m2.tets, small_mesh.tets)
        assert np.array_equal(m2.edges, small_mesh.edges)
        assert m2.name == small_mesh.name

    def test_suffix_appended(self, tmp_path):
        m = unit_cube_mesh(3)
        p = save_mesh(m, tmp_path / "noext")
        assert p.suffix == ".npz"

    def test_reordered_mesh_roundtrip(self, tmp_path):
        from repro.mesh import apply_orderings, shuffle_vertices
        m = apply_orderings(shuffle_vertices(unit_cube_mesh(4), 1),
                            "rcm", "sorted")
        m2 = load_mesh(save_mesh(m, tmp_path / "r"))
        assert np.array_equal(m2.edges, m.edges)  # edge order preserved

    def test_future_version_rejected(self, tmp_path):
        m = unit_cube_mesh(3)
        p = save_mesh(m, tmp_path / "v")
        data = dict(np.load(p, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez_compressed(p, **data)
        with pytest.raises(ValueError):
            load_mesh(p)

    def test_loaded_mesh_usable(self, tmp_path, small_mesh):
        m2 = load_mesh(save_mesh(small_mesh, tmp_path / "u"))
        dm = compute_dual_metrics(m2)
        assert dm.closure_defect(m2.edges).max() < 1e-11


class TestBumpMesh:
    def test_valid(self):
        m = bump_mesh(11, 4, 6)
        assert np.all(m.tet_volumes() > 0)
        dm = compute_dual_metrics(m)
        assert dm.closure_defect(m.edges).max() < 1e-11

    def test_bump_raises_floor(self):
        m = bump_mesh(17, 4, 6, height=0.1, jitter=0.0)
        floor = m.coords[np.abs(m.coords[:, 2]) < 0.2]
        # Mid-channel floor points sit above z=0; entrance/exit at z=0.
        mid = floor[np.abs(floor[:, 0] - 0.5) < 0.1]
        ends = floor[floor[:, 0] < 0.2]
        assert mid[:, 2].max() > 0.05
        assert np.all(np.abs(ends[:, 2]) < 1e-12)

    def test_volume_reduced_by_bump(self):
        flat = bump_mesh(11, 4, 6, height=0.0, jitter=0.0)
        bumped = bump_mesh(11, 4, 6, height=0.15, jitter=0.0)
        assert bumped.tet_volumes().sum() < flat.tet_volumes().sum()

    def test_same_connectivity_as_box(self):
        from repro.mesh import box_mesh
        b = bump_mesh(9, 4, 5, jitter=0.1, seed=2)
        r = box_mesh(9, 4, 5, jitter=0.1, seed=2)
        assert np.array_equal(b.edges, r.edges)


class TestVTK:
    def _parse(self, path):
        """Tiny legacy-VTK reader for round-trip checks."""
        lines = path.read_text().splitlines()
        i = lines.index(next(l for l in lines if l.startswith("POINTS")))
        n = int(lines[i].split()[1])
        pts = np.array([[float(x) for x in lines[i + 1 + k].split()]
                        for k in range(n)])
        j = next(k for k, l in enumerate(lines) if l.startswith("CELLS"))
        nt = int(lines[j].split()[1])
        cells = np.array([[int(x) for x in lines[j + 1 + k].split()[1:]]
                          for k in range(nt)])
        return n, pts, cells, lines

    def test_roundtrip_geometry(self, tmp_path, small_mesh):
        from repro.mesh import save_vtk
        p = save_vtk(small_mesh, tmp_path / "m")
        n, pts, cells, _ = self._parse(p)
        assert n == small_mesh.num_vertices
        assert np.allclose(pts, small_mesh.coords)
        assert np.array_equal(cells, small_mesh.tets)

    def test_point_data_written(self, tmp_path, small_mesh):
        from repro.mesh import save_vtk
        rng = np.random.default_rng(0)
        scal = rng.random(small_mesh.num_vertices)
        vec = rng.random((small_mesh.num_vertices, 3))
        p = save_vtk(small_mesh, tmp_path / "d",
                     point_data={"pressure": scal, "velocity": vec})
        _, _, _, lines = self._parse(p)
        assert any(l.startswith("SCALARS pressure") for l in lines)
        assert any(l.startswith("VECTORS velocity") for l in lines)
        k = lines.index("LOOKUP_TABLE default")
        got = np.array([float(lines[k + 1 + i])
                        for i in range(small_mesh.num_vertices)])
        assert np.allclose(got, scal)

    def test_bad_field_shape_rejected(self, tmp_path, small_mesh):
        from repro.mesh import save_vtk
        with pytest.raises(ValueError):
            save_vtk(small_mesh, tmp_path / "b",
                     point_data={"x": np.zeros((3, 2))})

    def test_space_in_name_rejected(self, tmp_path, small_mesh):
        from repro.mesh import save_vtk
        with pytest.raises(ValueError):
            save_vtk(small_mesh, tmp_path / "s",
                     point_data={"two words":
                                 np.zeros(small_mesh.num_vertices)})

    def test_cell_types_are_tetra(self, tmp_path, tiny_mesh):
        from repro.mesh import save_vtk
        p = save_vtk(tiny_mesh, tmp_path / "t")
        lines = p.read_text().splitlines()
        j = next(k for k, l in enumerate(lines)
                 if l.startswith("CELL_TYPES"))
        types = {lines[j + 1 + k] for k in range(tiny_mesh.num_tets)}
        assert types == {"10"}
