"""R004 fixture: bincount segment sum; scatter kept to setup code."""

import numpy as np


def accumulate(index, weights, nseg):
    return np.bincount(index, weights=weights, minlength=nseg)


def build_indptr(rows, nrows):
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    # lint: scatter-ok (one-shot indptr construction at build time)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr
