"""R003 fixture: loops confined to the oracle or pragma-justified."""

# lint: kernel (fixture: pretend this is a hot-path module)

import numpy as np


def row_sums_ref(indptr, data):
    out = np.zeros(indptr.size - 1, dtype=np.float64)
    for i in range(out.size):
        out[i] = data[indptr[i]:indptr[i + 1]].sum()
    return out


def row_sums(indptr, data, levels):
    out = np.zeros(indptr.size - 1, dtype=np.float64)
    # lint: loop-ok (one vectorised batch per level, O(levels))
    for rows in levels:
        out[rows] = np.add.reduceat(data, indptr[rows])
    return out
