"""R005 worker fixture, compliant half: the same clocked kernel in a
``# lint: worker`` module — forked workers cannot reach the parent's
recorder, so local clocking is the sanctioned exception (every other
kernel rule still applies)."""

# lint: worker (fixture: runs in forked workers, merges spans on collect)

import time

import numpy as np

from repro.telemetry.recorder import NULL_RECORDER


def timed_rank_kernel(x, recorder=NULL_RECORDER):
    t0 = time.perf_counter()
    y = np.square(x)
    recorder.count("kernel_s", time.perf_counter() - t0)
    return y
