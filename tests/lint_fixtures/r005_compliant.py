"""R005 fixture: NULL_RECORDER default, recorder-owned timing, seeded
RNG."""

# lint: kernel (fixture: pretend this is a hot-path module)

import numpy as np

from repro.telemetry.recorder import NULL_RECORDER


def perturbed_step(x, recorder=NULL_RECORDER):
    rng = np.random.default_rng(0)
    noise = rng.random(x.size, dtype=x.dtype)
    with recorder.phase("perturb"):
        return x + noise
