"""R005 worker fixture, violating half: a *kernel* module reading the
wall clock directly — only ``# lint: worker`` modules may do that."""

# lint: kernel (fixture: hot-path module, clocks are the recorder's job)

import time

import numpy as np

from repro.telemetry.recorder import NULL_RECORDER


def timed_rank_kernel(x, recorder=NULL_RECORDER):
    t0 = time.perf_counter()
    y = np.square(x)
    recorder.count("kernel_s", time.perf_counter() - t0)
    return y
