"""R009 fixture: disjoint-by-construction chunk writes.

Every store to a captured array indexes through names data-flow
derived from ``(lo, hi)``; closure-private scratch is exempt; the one
deliberate shared write carries a ``chunkwrite-ok`` pragma.
"""

import numpy as np

OUT = np.zeros(16, dtype=np.float64)
IDX = np.arange(16, dtype=np.int64)
HALO = np.zeros(4, dtype=np.float64)


def run_chunks(fn, chunks, threads):
    return [fn(lo, hi) for lo, hi in chunks]


def kernel(lo, hi):
    rows = IDX[lo:hi]
    OUT[rows] = rows * 2.0
    scratch = np.zeros(4, dtype=np.float64)
    scratch[0] = 1.0
    # lint: chunkwrite-ok (redundant halo write, identical value from every chunk)
    HALO[0] = 1.0


def driver(threads):
    return run_chunks(kernel, [(0, 8), (8, 16)], threads)
