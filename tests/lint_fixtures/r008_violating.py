"""R008 fixture: every impurity class on a worker-reachable path.

``helper`` is deliberately defined *after* its caller — resolution
must not depend on definition order.  Expected findings: global
rebind, module-container mutation, unseeded RNG, clock read, and a
fork-unsafe resource (write-mode open).
"""

import random
import time
from multiprocessing import Process

_CACHE = {}
_COUNT = 0


def worker_main():
    return helper()


def start():
    proc = Process(target=worker_main)
    proc.start()
    return proc


def helper():
    global _COUNT
    _COUNT += 1
    _CACHE["runs"] = _COUNT
    jitter = random.random()
    t0 = time.perf_counter()
    log = open("/tmp/worker.log", "w")
    log.write(f"{jitter} {t0}")
    log.close()
    return _COUNT
