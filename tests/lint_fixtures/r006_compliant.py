# lint: compiled (fixture: fully declared backend)
"""A compiled backend with the complete contract: every public
callable mapped to its numpy oracle, a fallback declared, and one
deliberate exception suppressed in place."""

__oracles__ = {
    "spmv": "pkg.sparse.csr.CSRMatrix.matvec",
    "load_backend": "pkg.kernels.backend_for",
}

__fallback__ = "pure numpy via pkg.kernels dispatch (returns None)"


def load_backend():
    return Backend()


def selftest():  # lint: compiled-ok (diagnostic helper, not a kernel)
    return True


class Backend:
    name = "fixture"

    def spmv(self, indptr, indices, data, x):
        return x

    def _scratch(self, n):
        return [0.0] * n
