"""R008 fixture: a pure thread-worker path.

The dispatch loop only transforms its arguments; the mutable service
bookkeeping stays on the coordinator-only ``start_service`` path,
which reachability keeps out of the worker partition.
"""

import threading

_THREADS = []


def handle(payload):
    return sum(payload) + 1


def dispatch_loop(payload):
    return handle(payload)


def start_service(payload):
    t = threading.Thread(target=dispatch_loop, args=(payload,),
                         daemon=True)
    _THREADS.append(t)
    t.start()
    return t
