"""R002 fixture: dtype-blind constructors and fp64-scalar promotion."""

# lint: kernel (fixture: pretend this is a hot-path module)

import numpy as np


def workspace(n):
    y = np.zeros(n)
    idx = np.arange(n)
    return y, idx


def scale(x):
    return np.float64(0.5) * x
