"""R002 fixture: dtype-blind constructors, fp64-scalar promotion, and
fp16 compute."""

# lint: kernel (fixture: pretend this is a hot-path module)

import numpy as np


def workspace(n):
    y = np.zeros(n)
    idx = np.arange(n)
    return y, idx


def scale(x):
    return np.float64(0.5) * x


def half_compute(pool, x):
    # fp16 is storage-only: arithmetic on the narrow form is flagged.
    y = pool.astype(np.float16) @ x
    y += np.float16(2.0)
    return y
