"""R001 fixture: the oracle and its vectorised twin, side by side."""

import numpy as np


def interpolate_ref(x, xs, ys):
    out = np.empty_like(np.asarray(x, dtype=np.float64))
    for i in range(out.size):
        out[i] = np.interp(x[i], xs, ys)
    return out


def interpolate(x, xs, ys):
    return np.interp(x, xs, ys)
