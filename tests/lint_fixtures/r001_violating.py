"""R001 fixture: a public ``*_ref`` oracle with no fast twin."""

import numpy as np


def decimate_ref(x):
    out = []
    for i in range(0, len(x), 2):
        out.append(x[i])
    return np.asarray(out)
