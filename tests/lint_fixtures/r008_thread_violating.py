"""R008 fixture: impurity on a *thread* worker path.

The solver service dispatches requests on ``threading.Thread`` workers
— the same purity contract as forked ``Process`` workers applies, so
``Thread(target=...)`` must mark its target as a worker entry.
Expected findings: global rebind and clock read in the dispatch loop.
"""

import threading
import time

_SERVED = 0


def dispatch_loop():
    global _SERVED
    _SERVED += 1
    return time.perf_counter()


def start_service():
    t = threading.Thread(target=dispatch_loop, daemon=True)
    t.start()
    return t
