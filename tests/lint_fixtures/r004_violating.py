"""R004 fixture: an ``np.add.at`` scatter outside setup-only code."""

import numpy as np


def accumulate(index, weights, nseg):
    out = np.zeros(nseg, dtype=np.float64)
    np.add.at(out, index, weights)
    return out
