# lint: compiled (fixture: backend with holes in its declarations)
"""A compiled backend missing its degradation contract: no
``__fallback__``, an ``__oracles__`` entry that is not a dotted path,
and a public method with no oracle claim at all."""

__oracles__ = {
    "spmv": "not-a-dotted-path",
    "load_backend": "pkg.backend.load_backend",
}


def load_backend():
    return Backend()


class Backend:
    name = "fixture"

    def spmv(self, indptr, indices, data, x):
        return x

    def trisolve(self, indptr, indices, data, x):
        return x
