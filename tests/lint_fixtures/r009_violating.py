"""R009 fixture: a chunk kernel writing rows outside its chunk.

``kernel``'s slice write is derived from ``(lo, hi)`` and fine; the
constant-index and captured-name writes hit rows every chunk also
owns — a scheduling race even when the stored values happen to agree.
"""

import numpy as np

OUT = np.zeros(16, dtype=np.float64)
SRC = np.ones(16, dtype=np.float64)
SHARED_ROW = 3


def run_chunks(fn, chunks, threads):
    return [fn(lo, hi) for lo, hi in chunks]


def kernel(lo, hi):
    OUT[lo:hi] = SRC[lo:hi] + 1.0
    OUT[0] = 99.0
    OUT[SHARED_ROW] = 1.0


def driver(threads):
    return run_chunks(kernel, [(0, 8), (8, 16)], threads)
