"""R003 fixture: a Python loop on a kernel module's hot path."""

# lint: kernel (fixture: pretend this is a hot-path module)

import numpy as np


def row_sums(indptr, data):
    out = np.zeros(indptr.size - 1, dtype=np.float64)
    for i in range(out.size):
        out[i] = data[indptr[i]:indptr[i + 1]].sum()
    return out
