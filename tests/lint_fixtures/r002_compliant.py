"""R002 fixture: every constructor states its dtype; no promotion;
fp16 used for storage only (widened before compute)."""

# lint: kernel (fixture: pretend this is a hot-path module)

import numpy as np


def workspace(n, dtype=np.float64):
    y = np.zeros(n, dtype=dtype)
    idx = np.arange(n, dtype=np.int64)
    return y, idx


def scale(x):
    return x.dtype.type(0.5) * x


def compact(pool):
    # Storing to fp16 is fine — only arithmetic on the narrow form is
    # the violation.
    return pool.astype(np.float16)


def half_matvec(pool16, x):
    wide = pool16.astype(np.float32)
    return wide @ x
