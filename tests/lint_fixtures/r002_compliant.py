"""R002 fixture: every constructor states its dtype; no promotion."""

# lint: kernel (fixture: pretend this is a hot-path module)

import numpy as np


def workspace(n, dtype=np.float64):
    y = np.zeros(n, dtype=dtype)
    idx = np.arange(n, dtype=np.int64)
    return y, idx


def scale(x):
    return x.dtype.type(0.5) * x
