"""R008 fixture: pure worker paths, with the documented carve-outs.

The ``register_at_fork`` handler resets worker-local state — that is
its whole job, so the mutation carries a ``purity-ok`` pragma.  The
``Process(...)`` handle is acquired on a coordinator-only path, which
reachability keeps out of the worker partition.
"""

import os
from multiprocessing import Process

_POOL_TABLE = {}


def _reset_after_fork():
    # lint: purity-ok (resets worker-local state after fork by design)
    _POOL_TABLE.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def transform(payload):
    return sum(payload) + 1


def worker_main(payload):
    return transform(payload)


def start(payload):
    proc = Process(target=worker_main, args=(payload,))
    proc.start()
    return proc
