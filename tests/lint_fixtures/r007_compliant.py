"""R007 fixture: a sound header schema.

Unique in-range offsets, every coordinator-written slot read by the
worker, and an ack slot (``_H_ERR``) that the coordinator resets and
workers raise — the worker-written carve-out.
"""

from multiprocessing import Process

_H_CMD = 0
_H_ARG = 1
_H_ERR = 2
_HDR_SLOTS = 4


def post(hdr):
    hdr[_H_CMD] = 1
    hdr[_H_ARG] = 7
    hdr[_H_ERR] = 0


def use(value):
    return value + 1


def worker_main(hdr):
    if hdr[_H_CMD]:
        try:
            return use(hdr[_H_ARG])
        except Exception:
            hdr[_H_ERR] = 1
    return None


def start(hdr):
    proc = Process(target=worker_main, args=(hdr,))
    proc.start()
    return proc
