"""R005 fixture: None-default recorder, direct clock, unseeded RNG."""

# lint: kernel (fixture: pretend this is a hot-path module)

import time

import numpy as np


def perturbed_step(x, recorder=None):
    t0 = time.perf_counter()
    noise = np.random.rand(x.size)
    return x + noise, time.perf_counter() - t0
