"""R007 fixture: every way an shm header schema can rot.

Duplicate offset, out-of-range offset, a coordinator-written slot no
worker ever reads, and a worker-read slot no coordinator ever writes.
"""

from multiprocessing import Process

_H_CMD = 0        # read on worker paths, never written by the coordinator
_H_DUP = 0        # aliases _H_CMD's cell
_H_OTHER = 2      # written by the coordinator, never read by any worker
_H_FAR = 99       # outside the allocated table
_HDR_SLOTS = 8


def post(hdr):
    hdr[_H_OTHER] = 1


def worker_main(hdr):
    return hdr[_H_CMD]


def start(hdr):
    proc = Process(target=worker_main, args=(hdr,))
    proc.start()
    return proc
