"""Fixture modules for the reprolint regression tests.

Each ``r00X_violating.py`` triggers exactly its rule; each
``r00X_compliant.py`` is the minimal fix and must lint clean.  The
files are parsed by the linter, never imported, and their names avoid
the ``test_*.py`` pattern so pytest does not collect them.
"""
