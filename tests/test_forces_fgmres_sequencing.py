"""Force integration, flexible GMRES, and grid sequencing."""

import numpy as np
import pytest

from repro.core import NKSSolver, SolverConfig
from repro.core.sequencing import (grid_sequenced_solve, interpolate_state,
                                   nearest_vertices)
from repro.euler import (integrate_wall_forces, pressure_coefficient,
                         wall_pressure, wing_problem)
from repro.solvers import fgmres, gmres
from repro.solvers.ptc import PTCConfig
from repro.sparse import CSRMatrix, ilu_csr


@pytest.fixture(scope="module")
def solved_wing():
    prob = wing_problem(11, 7, 5, alpha_deg=3.0)
    cfg = SolverConfig(matrix_free=True, jacobian_lag=2, max_steps=30,
                       target_reduction=1e-8, ptc=PTCConfig(cfl0=10.0))
    rep = NKSSolver(prob.disc, cfg).solve(prob.initial.flat())
    assert rep.converged
    return prob, rep


class TestForces:
    def test_freestream_state_zero_force(self):
        """Uniform freestream pressure produces no net wall force."""
        prob = wing_problem(8, 6, 4)
        wf = integrate_wall_forces(prob.disc, prob.initial.flat())
        assert abs(wf.cl) < 1e-12
        assert abs(wf.cd) < 1e-12

    def test_positive_lift_at_positive_alpha(self, solved_wing):
        prob, rep = solved_wing
        wf = integrate_wall_forces(prob.disc, rep.final_state)
        # Flow over a floor-mounted patch at +3 deg: suction side up.
        assert wf.cl > 0.01

    def test_cp_consistent_with_pressure(self, solved_wing):
        prob, rep = solved_wing
        wall, p = wall_pressure(prob.disc, rep.final_state)
        wall2, cp = pressure_coefficient(prob.disc, rep.final_state)
        assert np.array_equal(wall, wall2)
        # Incompressible: p_inf = 0, q_inf = 0.5 => cp = 2 p.
        assert np.allclose(cp, 2 * p)

    def test_compressible_pressure_extraction(self):
        prob = wing_problem(6, 5, 4, compressible=True, mach=0.4)
        wall, p = wall_pressure(prob.disc, prob.initial.flat())
        assert np.allclose(p, 1.0)      # freestream p = 1

    def test_no_wall_raises(self):
        from repro.euler import duct_problem
        prob = duct_problem(4)
        with pytest.raises(ValueError):
            integrate_wall_forces(prob.disc, prob.initial.flat())

    def test_lift_axis_validation(self, solved_wing):
        prob, rep = solved_wing
        fs_dir = prob.disc.farfield_state[1:4]
        with pytest.raises(ValueError):
            integrate_wall_forces(prob.disc, rep.final_state,
                                  lift_axis=fs_dir)


class TestFGMRES:
    def _system(self, n=100, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)) * 0.2 + np.eye(n) * 4
        return CSRMatrix.from_dense(a), rng.random(n), a

    def test_matches_gmres_for_fixed_pc(self):
        m, b, a = self._system()
        pc = ilu_csr(m, 1)
        r1 = gmres(m, b, M=pc, rtol=1e-10)
        r2 = fgmres(m, b, M=pc, rtol=1e-10)
        assert r2.converged
        assert r1.iterations == r2.iterations
        assert np.allclose(r1.x, r2.x, atol=1e-8)

    def test_variable_preconditioner(self):
        """Inner-Krylov preconditioning (changes every application) —
        the case plain GMRES is not guaranteed to handle."""
        m, b, a = self._system(seed=1)

        class InnerPC:
            def solve(self, r):
                return gmres(m, r, rtol=0.05, maxiter=10).x

        res = fgmres(m, b, M=InnerPC(), rtol=1e-10, maxiter=150)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-6)
        # Few outer iterations thanks to the strong inner solves.
        assert res.iterations < 20

    def test_unpreconditioned(self):
        m, b, a = self._system(seed=2)
        res = fgmres(m, b, rtol=1e-9)
        assert res.converged

    def test_residuals_monotone_within_cycle(self):
        m, b, _ = self._system(seed=3)
        res = fgmres(m, b, rtol=1e-11, restart=100, maxiter=100)
        r = np.array(res.residual_norms)
        assert np.all(np.diff(r) <= 1e-9 * r[:-1] + 1e-14)


class TestNearestVertices:
    def test_exact_match(self, rng):
        pts = rng.random((40, 3))
        idx, dist = nearest_vertices(pts, pts[5:7], k=1)
        assert idx[:, 0].tolist() == [5, 6]
        assert np.allclose(dist, 0)

    def test_matches_bruteforce(self, rng):
        src = rng.random((60, 3))
        tgt = rng.random((25, 3))
        idx, dist = nearest_vertices(src, tgt, k=3)
        for t in range(25):
            d = np.linalg.norm(src - tgt[t], axis=1)
            ref = np.sort(d)[:3]
            assert np.allclose(np.sort(dist[t]), ref, atol=1e-12)

    def test_k_capped_at_sources(self, rng):
        src = rng.random((2, 3))
        idx, dist = nearest_vertices(src, rng.random((5, 3)), k=4)
        assert idx.shape == (5, 2)


class TestSequencing:
    def test_interpolation_exact_for_linear(self):
        coarse = wing_problem(6, 5, 4, seed=0)
        fine = wing_problem(9, 7, 5, seed=0)
        g = np.array([0.3, -0.7, 1.1])
        qc = np.zeros((coarse.mesh.num_vertices, 4))
        qc[:] = (coarse.mesh.coords @ g)[:, None]
        qf = interpolate_state(coarse, fine, qc.ravel()).reshape(-1, 4)
        exact = (fine.mesh.coords @ g)[:, None]
        # IDW from 4 neighbours is an initial-guess transfer, not an
        # interpolant: demand qualitative accuracy (max error a modest
        # fraction of the data span, mean error much smaller).
        span = exact.max() - exact.min()
        assert np.abs(qf - exact).max() < 0.2 * span
        assert np.abs(qf - exact).mean() < 0.05 * span

    def test_sequenced_solve_converges(self):
        cfg_coarse = SolverConfig(matrix_free=True, jacobian_lag=2,
                                  max_steps=15, target_reduction=1e-4,
                                  ptc=PTCConfig(cfl0=10.0))
        cfg_fine = SolverConfig(matrix_free=True, jacobian_lag=2,
                                max_steps=25, target_reduction=1e-6,
                                ptc=PTCConfig(cfl0=100.0))
        seq = grid_sequenced_solve(
            [wing_problem(6, 5, 4, seed=0), wing_problem(9, 7, 5, seed=0)],
            [cfg_coarse, cfg_fine])
        assert seq.final.converged
        assert len(seq.reports) == 2
        assert seq.total_steps == sum(r.num_steps for r in seq.reports)

    def test_single_config_broadcast(self):
        cfg = SolverConfig(matrix_free=True, max_steps=10,
                           target_reduction=1e-3)
        seq = grid_sequenced_solve(
            [wing_problem(5, 4, 4), wing_problem(6, 5, 4)], cfg)
        assert len(seq.reports) == 2

    def test_mismatched_models_raise(self):
        a = wing_problem(5, 4, 4)
        b = wing_problem(6, 5, 4, compressible=True)
        with pytest.raises(ValueError):
            interpolate_state(a, b, a.initial.flat())

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_sequenced_solve([], SolverConfig())
        with pytest.raises(ValueError):
            grid_sequenced_solve([wing_problem(5, 4, 4)],
                                 [SolverConfig(), SolverConfig()])
