"""The ranks x threads scaling harness: fits, schema, smoke study.

The Amdahl fit is exercised against synthetic data where the answer is
known in closed form; the study itself runs once in smoke mode (tiny
meshes, one repeat) and the resulting report is checked structurally —
every grid point measured, phases decomposed, weak series present,
JSON round-trippable.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.parallel.scaling import (ScalingResult, amdahl_fit,
                                    run_scaling)


def amdahl_times(t1, s, procs):
    return [t1 * (s + (1.0 - s) / p) for p in procs]


class TestAmdahlFit:
    @pytest.mark.parametrize("s", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_recovers_exact_serial_fraction(self, s):
        procs = [1, 2, 4, 8]
        fit = amdahl_fit(procs, amdahl_times(2.0, s, procs))
        assert fit["serial_fraction"] == pytest.approx(s, abs=1e-12)
        assert fit["parallel_fraction"] == pytest.approx(1.0 - s,
                                                         abs=1e-12)
        assert fit["t1_s"] == pytest.approx(2.0)
        assert fit["max_rel_residual"] == pytest.approx(0.0, abs=1e-12)

    def test_noisy_data_reports_residual(self):
        procs = [1, 2, 4]
        times = amdahl_times(1.0, 0.3, procs)
        times[2] *= 1.25
        fit = amdahl_fit(procs, times)
        assert 0.0 < fit["serial_fraction"] < 1.0
        assert fit["max_rel_residual"] > 0.0

    def test_slowdown_clamps_to_one(self):
        # Times that *grow* with p fit as s > 1; the report clamps.
        fit = amdahl_fit([1, 2, 4], [1.0, 1.6, 2.9])
        assert fit["serial_fraction"] == 1.0

    def test_points_carry_model_and_measured(self):
        procs = [1, 2]
        fit = amdahl_fit(procs, amdahl_times(1.0, 0.5, procs))
        assert [p["p"] for p in fit["points"]] == procs
        for p in fit["points"]:
            assert p["measured_s"] == pytest.approx(p["model_s"])

    def test_no_unit_point_uses_max_as_t1(self):
        fit = amdahl_fit([2, 4], [0.6, 0.35])
        assert fit["t1_s"] == pytest.approx(0.6)


class TestSmokeStudy:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("scaling") / "BENCH_scaling.json"
        res = run_scaling(smoke=True, out=str(out), log=lambda m: None)
        return res, out

    def test_strong_grid_fully_measured(self, result):
        res, _ = result
        assert len(res.cases) >= 2
        for case in res.cases:
            assert case.baseline_s > 0.0
            workers = {g.workers for g in case.grid}
            threads = {g.threads for g in case.grid}
            assert len(case.grid) == len(workers) * len(threads)
            best = case.best()
            assert best.speedup == max(g.speedup for g in case.grid)

    def test_phase_decomposition_present(self, result):
        res, _ = result
        g = res.cases[0].grid[0]
        assert "matvec" in g.phases
        for split in g.phases.values():
            # Compute and wait are separate accumulators (the wait
            # fraction is wait / (compute + wait)), both nonnegative.
            assert split["total_s"] >= 0.0
            assert split["wait_s"] >= 0.0
            assert 0.0 <= split["wait_fraction"] <= 1.0
            assert split["calls"] > 0

    def test_amdahl_fits_attached(self, result):
        res, _ = result
        for case in res.cases:
            assert "hybrid" in case.amdahl
            assert any(k.startswith("threads=") for k in case.amdahl)

    def test_weak_series(self, result):
        res, _ = result
        assert res.weak
        unit = [w for w in res.weak if w.workers == 1]
        assert all(w.efficiency == pytest.approx(1.0) for w in unit)
        assert all(w.efficiency > 0.0 for w in res.weak)

    def test_report_roundtrips_as_json(self, result):
        res, out = result
        with open(out, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["schema_version"] == 1
        assert doc["meta"]["smoke"] is True
        assert doc["meta"]["cpu_count"] >= 1
        assert len(doc["cases"]) == len(res.cases)
        assert doc["weak_scaling"]
        speedups = [g["speedup"] for c in doc["cases"] for g in c["grid"]]
        assert all(np.isfinite(speedups))

    def test_table_renders(self, result):
        res, _ = result
        text = res.table()
        assert "strong scaling" in text
        assert "weak scaling" in text
        assert "amdahl" in text

    def test_hybrid_best_lookup(self, result):
        res, _ = result
        label = res.cases[0].label
        assert res.hybrid_best(label) is res.cases[0].best()
        assert res.hybrid_best("nope") is None

    def test_result_reconstructable_from_dict(self, result):
        res, _ = result
        doc = res.to_dict()
        clone = ScalingResult(meta=doc["meta"], cases=[], weak=[])
        assert clone.meta["baseline"].startswith("seq executor")
