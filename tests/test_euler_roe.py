"""Roe flux-difference splitting: properties and solver integration."""

import numpy as np
import pytest

from repro.euler.fluxes import (compressible_flux, compressible_wavespeed,
                                rusanov_flux)
from repro.euler.roe import roe_flux


def make_state(rho, vel, p, gamma=1.4):
    vel = np.asarray(vel, dtype=np.float64)
    return np.array([[rho, *(rho * vel),
                      p / (gamma - 1) + 0.5 * rho * (vel @ vel)]])


@pytest.fixture(scope="module")
def random_states(rng):
    q = np.zeros((12, 5))
    q[:, 0] = 1 + 0.3 * rng.random(12)
    q[:, 1:4] = 0.3 * (rng.random((12, 3)) - 0.5)
    q[:, 4] = 2.5 + rng.random(12)
    s = rng.random((12, 3)) - 0.5
    return q, s


class TestRoeProperties:
    def test_consistency(self, random_states):
        q, s = random_states
        assert np.allclose(roe_flux(q, q, s), compressible_flux(q, s),
                           atol=1e-12)

    def test_conservation_antisymmetry(self, random_states):
        q, s = random_states
        qr = np.roll(q, 1, axis=0)
        assert np.allclose(roe_flux(q, qr, s), -roe_flux(qr, q, -s),
                           atol=1e-12)

    def test_stationary_contact_exact(self):
        """Roe's defining property: a contact/shear jump at rest passes
        with zero dissipation (Rusanov smears it at the sound speed)."""
        n = np.array([[1.0, 0.0, 0.0]])
        ql = make_state(1.0, [0, 0.2, 0.1], 2.5)
        qr = make_state(0.5, [0, -0.3, 0.4], 2.5)
        central = 0.5 * (compressible_flux(ql, n)
                         + compressible_flux(qr, n))
        assert np.allclose(roe_flux(ql, qr, n), central, atol=1e-12)
        rus = rusanov_flux(ql, qr, n, compressible_flux,
                           compressible_wavespeed)
        assert np.abs(rus - central).max() > 0.1

    def test_less_dissipative_than_rusanov_on_shear(self, rng):
        """At low normal Mach the Roe dissipation is ~M times the
        Rusanov one."""
        n = np.array([[1.0, 0.0, 0.0]])
        ql = make_state(1.0, [0.05, 0.4, 0.0], 2.5)
        qr = make_state(0.9, [0.05, -0.4, 0.1], 2.4)
        central = 0.5 * (compressible_flux(ql, n)
                         + compressible_flux(qr, n))
        d_roe = np.abs(roe_flux(ql, qr, n) - central).max()
        d_rus = np.abs(rusanov_flux(ql, qr, n, compressible_flux,
                                    compressible_wavespeed)
                       - central).max()
        assert d_roe < 0.5 * d_rus

    def test_supersonic_upwinding(self):
        """Fully supersonic flow: the Roe flux equals the upstream
        analytic flux (all waves run one way)."""
        n = np.array([[1.0, 0.0, 0.0]])
        ql = make_state(1.0, [3.0, 0.0, 0.0], 1.0)   # M ~ 2.5
        qr = make_state(0.8, [2.8, 0.1, 0.0], 0.9)
        f = roe_flux(ql, qr, n)
        assert np.allclose(f, compressible_flux(ql, n), rtol=1e-10)

    def test_entropy_fix_floors_eigenvalues(self):
        """At a sonic expansion (lambda ~ 0) the fixed flux is more
        dissipative than the raw one."""
        n = np.array([[1.0, 0.0, 0.0]])
        # un - a ~ 0 on one side.
        ql = make_state(1.0, [1.18, 0.0, 0.0], 1.0)   # a ~ 1.18
        qr = make_state(0.7, [1.5, 0.0, 0.0], 0.7)
        f_raw = roe_flux(ql, qr, n, entropy_fix=1e-12)
        f_fix = roe_flux(ql, qr, n, entropy_fix=0.2)
        assert not np.allclose(f_raw, f_fix)

    def test_area_scaling(self, random_states):
        q, s = random_states
        qr = np.roll(q, 1, axis=0)
        assert np.allclose(roe_flux(q, qr, 3.0 * s),
                           3.0 * roe_flux(q, qr, s), atol=1e-12)


class TestRoeInSolver:
    def test_freestream_preserved(self):
        from repro.euler import duct_problem
        prob = duct_problem(4, compressible=True)
        prob.disc.flux_scheme = "roe"
        r = prob.disc.residual(prob.initial.flat())
        assert np.abs(r).max() < 1e-12

    def test_scheme_validation(self):
        from repro.euler import wing_problem
        from repro.euler.compressible import CompressibleEuler
        prob = wing_problem(5, 4, 4, compressible=True)
        with pytest.raises(ValueError):
            CompressibleEuler(prob.mesh, prob.disc.bc, prob.disc.dual,
                              flux_scheme="hllc")

    def test_transonic_bump_resolves_supersonic_pocket(self):
        """With Roe's sharper flux the M=0.84 bump flow develops a
        genuinely supersonic pocket at this resolution; Rusanov's
        dissipation suppresses it.  Both converge."""
        from repro.core import NKSSolver, SolverConfig
        from repro.euler import transonic_bump_problem
        from repro.solvers.ptc import PTCConfig
        cfg = SolverConfig(
            ptc=PTCConfig(cfl0=2.0, exponent=0.75, switch_order_drop=1e-2,
                          first_order_exponent=1.5),
            max_steps=80, target_reduction=3e-6, matrix_free=True,
            jacobian_lag=2)
        mmax = {}
        for scheme in ("rusanov", "roe"):
            prob = transonic_bump_problem(13, 4, 7, limiter="minmod",
                                          flux_scheme=scheme)
            rep = NKSSolver(prob.disc, cfg).solve(prob.initial.flat())
            assert rep.converged, scheme
            q = rep.final_state.reshape(-1, 5)
            rho = q[:, 0]
            vel = q[:, 1:4] / rho[:, None]
            p = 0.4 * (q[:, 4] - 0.5 * rho
                       * np.einsum("ij,ij->i", vel, vel))
            mmax[scheme] = float((np.linalg.norm(vel, axis=1)
                                  / np.sqrt(1.4 * p / rho)).max())
        assert mmax["roe"] > mmax["rusanov"]
        assert mmax["roe"] > 0.99
