"""Smoke/shape tests of the experiment harnesses (fast configurations).

The benchmarks run the full-size experiments; these tests run tiny
configurations so the harness plumbing (rows, columns, notes,
assertable shapes) is exercised inside the unit-test budget.
"""

import pytest

from repro.experiments import (default_wing, measured_linear_iterations,
                               run_eq_bounds, run_fig3, run_fig5,
                               run_table1, run_table3, run_table5)
from repro.experiments.common import ExperimentResult, solve_with_partition


class TestCommon:
    def test_experiment_result_table(self):
        r = ExperimentResult(name="t", headers=["a", "b"],
                             rows=[[1, 2.5], [3, 4.0]], notes=["n"])
        text = r.table()
        assert "t" in text and "# n" in text
        assert r.column("a") == [1, 3]

    def test_default_wing_sizes_ordered(self):
        tiny = default_wing("tiny")
        small = default_wing("small")
        assert tiny.mesh.num_vertices < small.mesh.num_vertices

    def test_solve_with_partition_fixed_steps(self):
        prob = default_wing("tiny")
        solver, rep = solve_with_partition(prob, 2, max_steps=3)
        assert rep.num_steps == 3          # unreachable target: all steps
        assert solver.partition_labels.max() == 1

    def test_measured_iterations_grow_with_parts(self):
        prob = default_wing("small")
        its2, _ = measured_linear_iterations(prob, 2, max_steps=3)
        its16, _ = measured_linear_iterations(prob, 16, max_steps=3)
        assert sum(its16) >= sum(its2)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(dims=(8, 6, 5), cache_scale=48,
                          linear_its_per_step=3)

    def test_six_rows(self, result):
        assert len(result.rows) == 6

    def test_baseline_normalised(self, result):
        assert result.rows[0][4] == 1

    def test_full_stack_wins(self, result):
        ratios = result.column("Ratio")
        assert ratios[-1] == max(ratios)
        assert ratios[-1] > 1.5


class TestTable3:
    @pytest.fixture(scope="class")
    def sc(self):
        return run_table3(procs=(2, 8), size="small", max_steps=3)

    def test_iterations_measured(self, sc):
        assert sc.points[0].linear_its > 0
        assert sc.points[1].linear_its >= sc.points[0].linear_its

    def test_efficiency_reference(self, sc):
        assert sc.efficiency[0].eta_overall == 1.0

    def test_tables_render(self, sc):
        assert "eta_alg" in sc.to_table().table()
        assert "Vtx/proc" in sc.to_fig1_table().table()

    def test_factorisation_identity(self, sc):
        for eff in sc.efficiency:
            assert eff.eta_overall == pytest.approx(
                eff.eta_alg * eff.eta_impl, rel=1e-9)


class TestTable5:
    def test_rows_and_shape(self):
        r = run_table5(node_counts=(2, 4), size="small")
        assert len(r.rows) == 2
        t1 = r.column("1 thread(s)")
        t2 = r.column("2 threads(s)")
        assert all(b < a for a, b in zip(t1, t2))


class TestFig3:
    def test_reordering_effect(self):
        r = run_fig3(dims=(8, 6, 5), cache_scale=48)
        rows = {row[0]: row for row in r.rows}
        assert (rows["reordered interlaced+blocked"][2]
                < rows["NOER noninterlaced"][2])


class TestFig5:
    def test_histories_and_monotonicity(self):
        r, hists = run_fig5(cfl0_values=(1.0, 20.0), size="tiny",
                            max_steps=40)
        assert len(hists) == 2
        assert hists[0].steps_to_target >= hists[1].steps_to_target
        for h in hists:
            assert h.residuals[0] == pytest.approx(1.0)


class TestServiceBench:
    def test_smoke_stream_report(self, tmp_path):
        from repro.experiments.service_bench import run_service_bench

        out = tmp_path / "BENCH_service.json"
        res = run_service_bench(smoke=True, out=str(out), repeats=1)
        doc = res.doc
        assert out.exists()
        assert doc["schema_version"] == 1
        assert doc["meta"]["mesh_hash"].startswith("mesh") is False
        assert doc["meta"]["mesh_hash"]            # sha1 hex digest
        assert "git_sha" in doc["meta"]            # None allowed, key not
        assert all(r["status"] == "completed" for r in doc["requests"])
        # The repeat request hit every structural namespace.
        assert doc["warm"]["count"] == 1
        for ns, st in doc["cache"].items():
            assert st["hits"] > 0, ns
        assert doc["warm_speedup"] > 0
        assert doc["requests_per_sec"] > 0
        # The rendered table mentions every latency tier.
        text = res.table()
        for tier in ("cold", "warm", "jittered"):
            assert tier in text


class TestEqBounds:
    def test_bound_valid(self):
        r = run_eq_bounds(n=1024, bandwidths=(128, 1024, 2048))
        assert all(r.column("Bound + compulsory >= sim"))

    def test_knee_location(self):
        from repro.memory.cache import CacheConfig
        cache = CacheConfig("c", 8 * 1024, 32, 2)     # 1024 words
        r = run_eq_bounds(n=1024, cache=cache,
                          bandwidths=(512, 4096))
        bounds = r.column("Eq. bound")
        assert bounds[0] == 0 and bounds[1] > 0
