"""The runtime parallel-safety sanitizer (``repro.sanitize``).

The headline test seeds a chunk kernel that races on a shared row but
stores the *same value* from every chunk — the result is bitwise
identical to the sequential run, so the end-to-end equivalence tests
cannot catch it.  The write sanitizer catches it at the offending
store.  Also covered: declared-chunk overlap, the shm header-slot echo
(coordinator/worker schema mismatch), interval-ledger unit behaviour,
state-hash trails, and a live ProcPool under ``REPRO_SANITIZE=1``.
"""

import numpy as np
import pytest

from repro.parallel.threads import run_chunks
from repro.sanitize import (GLOBAL, HashTrail, SanitizeError, SlotTracker,
                            WriteSanitizer, capture, check_header_echo,
                            chunk_owner, current_owner, enabled,
                            first_divergence, mask_of, note, state_hash,
                            track_slots, tracked)


@pytest.fixture
def sanitize_on(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    GLOBAL.new_region("test")
    yield
    GLOBAL.new_region("test-done")


@pytest.fixture
def sanitize_off(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)


def _racy_kernel(out):
    """Each chunk writes its own slice AND row 0 — with the value row 0
    would get anyway, so the race is invisible to a bitwise check."""
    def kernel(lo, hi):
        out[lo:hi] = np.arange(lo, hi, dtype=np.float64)
        out[0] = 0.0            # every chunk writes the same value here
    return kernel


class TestSeededOverlappingWrite:
    """The acceptance scenario: bitwise-clean result, dirty schedule."""

    def test_bitwise_check_alone_misses_the_race(self, sanitize_off):
        out = np.full(16, -1.0)
        run_chunks(_racy_kernel(out), [(0, 8), (8, 16)], threads=2)
        # The end-to-end oracle passes: the race stored identical values.
        assert np.array_equal(out, np.arange(16, dtype=np.float64))

    def test_sanitizer_catches_the_same_race(self, sanitize_on):
        out = tracked(np.full(16, -1.0))
        with pytest.raises(SanitizeError, match="overlapping writes"):
            run_chunks(_racy_kernel(out), [(0, 8), (8, 16)], threads=1)

    def test_error_names_both_owners_and_rows(self, sanitize_on):
        out = tracked(np.full(16, -1.0))
        with pytest.raises(SanitizeError) as exc:
            run_chunks(_racy_kernel(out), [(0, 8), (8, 16)], threads=1)
        msg = str(exc.value)
        assert "chunk0" in msg and "chunk1" in msg
        assert "[0, 1)" in msg

    def test_disjoint_kernel_passes_and_is_correct(self, sanitize_on):
        out = tracked(np.full(16, -1.0))

        def kernel(lo, hi):
            out[lo:hi] = np.arange(lo, hi, dtype=np.float64)

        run_chunks(kernel, [(0, 8), (8, 16)], threads=2)
        assert np.array_equal(np.asarray(out),
                              np.arange(16, dtype=np.float64))

    def test_declared_overlapping_chunks_caught_up_front(self, sanitize_on):
        # The chunk list itself overlaps: flagged before any kernel runs.
        ran = []
        with pytest.raises(SanitizeError, match="overlapping writes"):
            run_chunks(lambda lo, hi: ran.append((lo, hi)),
                       [(0, 8), (4, 12)], threads=1)
        assert ran == []

    def test_successive_regions_may_rewrite_rows(self, sanitize_on):
        # Two sweeps over the same rows (e.g. two solver iterations)
        # are legitimate: each run_chunks call opens a new region.
        out = tracked(np.zeros(8))

        def kernel(lo, hi):
            out[lo:hi] = 1.0

        run_chunks(kernel, [(0, 4), (4, 8)], threads=1)
        run_chunks(kernel, [(0, 4), (4, 8)], threads=1)


class TestWriteSanitizerLedger:
    def test_cross_owner_overlap_raises(self):
        san = WriteSanitizer("x")
        san.claim("a", 0, 8)
        with pytest.raises(SanitizeError, match="already written by 'a'"):
            san.claim("b", 4, 12)

    def test_same_owner_rewrite_is_fine(self):
        san = WriteSanitizer("x")
        san.claim("a", 0, 8)
        san.claim("a", 0, 8)

    def test_disjoint_keys_never_collide(self):
        san = WriteSanitizer("x")
        san.claim("a", 0, 8, key="lhs")
        san.claim("b", 0, 8, key="rhs")

    def test_new_region_forgets_prior_claims(self):
        san = WriteSanitizer("x")
        san.claim("a", 0, 8)
        san.new_region()
        san.claim("b", 0, 8)

    def test_empty_interval_is_a_noop(self):
        san = WriteSanitizer("x")
        san.claim("a", 0, 8)
        san.claim("b", 5, 5)

    def test_claim_indices_coalesces_runs(self):
        san = WriteSanitizer("x")
        san.claim_indices("a", [0, 1, 2, 7, 8])
        # The gap [3, 7) stays unclaimed; a disjoint owner may take it.
        san.claim("b", 3, 7)
        with pytest.raises(SanitizeError):
            san.claim("c", 8, 9)

    def test_claim_indices_accepts_boolean_masks(self):
        san = WriteSanitizer("x")
        mask = np.zeros(10, dtype=bool)
        mask[2:5] = True
        san.claim_indices("a", mask)
        with pytest.raises(SanitizeError):
            san.claim("b", 4, 6)

    def test_require_cover_flags_gaps(self):
        san = WriteSanitizer("rows")
        san.claim_indices("r0", [0, 1, 2])
        san.claim_indices("r1", [5, 6, 7])
        with pytest.raises(SanitizeError, match="coverage gap"):
            san.require_cover(0, 8)

    def test_require_cover_passes_on_partition(self):
        san = WriteSanitizer("rows")
        san.claim_indices("r0", [0, 1, 2, 3])
        san.claim_indices("r1", [4, 5, 6, 7])
        san.require_cover(0, 8)


class TestTrackedArray:
    def test_writes_reach_the_underlying_buffer(self, sanitize_on):
        base = np.zeros(4)
        t = tracked(base)
        with chunk_owner("c0"):
            t[1] = 5.0
        assert base[1] == 5.0

    def test_no_owner_means_no_claims(self, sanitize_on):
        san = WriteSanitizer("x")
        t = tracked(np.zeros(8), sanitizer=san, key="arr")
        assert current_owner() is None
        t[0:8] = 1.0            # coordinator-context write: untracked
        san.claim("other", 0, 8, key="arr")     # no clash: none recorded

    def test_views_are_deliberately_untracked(self, sanitize_on):
        san = WriteSanitizer("x")
        t = tracked(np.zeros(8), sanitizer=san, key="arr")
        view = t[4:]
        with chunk_owner("c0"):
            view[0] = 1.0       # index 0 *of the view* => wrong base row
        san.claim("other", 4, 5, key="arr")     # untracked: no wrong claim

    def test_fancy_index_write_claims_each_run(self):
        san = WriteSanitizer("x")
        t = tracked(np.zeros(10), sanitizer=san, key="arr")
        with chunk_owner("c0"):
            t[np.array([1, 2, 8])] = 1.0
        with pytest.raises(SanitizeError):
            san.claim("c1", 2, 3, key="arr")
        san.claim("c1", 3, 8, key="arr")    # the inter-run gap stays free


class TestHeaderEcho:
    def test_slot_tracker_records_scalar_reads_and_writes(self):
        hdr = track_slots(np.zeros(8, dtype=np.int64))
        hdr[3] = 42
        _ = hdr[3]
        _ = hdr[5]
        assert hdr.writes == {3}
        assert hdr.reads == {3, 5}
        assert np.asarray(hdr)[3] == 42

    def test_whole_array_store_counts_every_slot(self):
        hdr = track_slots(np.zeros(4, dtype=np.int64))
        hdr[:] = 0
        assert hdr.writes == {0, 1, 2, 3}

    def test_tracker_is_a_live_view_of_the_header(self):
        base = np.zeros(4, dtype=np.int64)
        hdr = track_slots(base)
        hdr[2] = 7
        assert base[2] == 7

    def test_mask_of_with_exclusion(self):
        assert mask_of({0, 1, 3}) == 0b1011
        assert mask_of({0, 1, 3}, exclude=(3,)) == 0b0011

    def test_read_of_unwritten_slot_raises_with_name(self):
        written = mask_of({0, 1})
        read = mask_of({0, 2})
        with pytest.raises(SanitizeError, match="schema drift") as exc:
            check_header_echo(written, read, {2: "_H_ARG"})
        assert "2 (_H_ARG)" in str(exc.value)

    def test_reads_subset_of_writes_passes(self):
        check_header_echo(mask_of({0, 1, 2}), mask_of({1, 2}))
        check_header_echo(mask_of({0}), 0)

    def test_cumulative_writes_cover_later_reads(self):
        # Matrix descriptor slots are written once and read by every
        # later op — the check must run against the cumulative mask.
        written = mask_of({0, 1}) | mask_of({5, 6})
        check_header_echo(written, mask_of({5}))


class TestStateHash:
    def test_hash_is_content_sensitive(self):
        a = np.arange(8, dtype=np.float64)
        b = a.copy()
        assert state_hash(a) == state_hash(b)
        b[3] = np.nextafter(b[3], np.inf)   # a single-ulp flip is enough
        assert state_hash(a) != state_hash(b)

    def test_hash_distinguishes_dtype_and_shape(self):
        a = np.zeros(8, dtype=np.float64)
        assert state_hash(a) != state_hash(a.astype(np.float32))
        assert state_hash(a) != state_hash(a.reshape(2, 4))

    def test_note_records_only_inside_capture(self, sanitize_on):
        note("orphan", np.zeros(2))     # no active capture: dropped
        with capture("run") as trail:
            note("residual", np.zeros(2))
            note("dot", np.ones(1))
        assert [p for p, _ in trail.steps] == ["residual", "dot"]

    def test_note_is_a_noop_when_disabled(self, sanitize_off):
        with capture("run") as trail:
            note("residual", np.zeros(2))
        assert len(trail) == 0

    def test_first_divergence_pinpoints_step_and_phase(self):
        a, b = HashTrail("seq"), HashTrail("proc")
        x = np.arange(4, dtype=np.float64)
        for t in (a, b):
            t.record("residual", x)
            t.record("matvec", x * 2)
        a.record("dot", np.array([1.0]))
        b.record("dot", np.array([2.0]))
        d = first_divergence(a, b)
        assert d["step"] == 2 and d["phase"] == "dot"
        assert d["seq"]["hash"] != d["proc"]["hash"]

    def test_equivalent_trails_return_none(self):
        a, b = HashTrail("seq"), HashTrail("proc")
        for t in (a, b):
            t.record("residual", np.arange(4, dtype=np.float64))
        assert first_divergence(a, b) is None

    def test_length_mismatch_names_the_short_trail(self):
        a, b = HashTrail("seq"), HashTrail("proc")
        a.record("residual", np.zeros(2))
        a.record("dot", np.ones(1))
        b.record("residual", np.zeros(2))
        d = first_divergence(a, b)
        assert d == {"step": 1, "phase": "dot", "missing_in": "proc"}


class TestProcPoolUnderSanitizer:
    """A live pool with the header echo + partition checks armed."""

    @pytest.fixture(scope="class")
    def problem(self):
        from repro.euler import wing_problem
        from repro.parallel import SPMDLayout
        from repro.partition import kway_partition

        prob = wing_problem(6, 5, 4)
        labels = kway_partition(prob.mesh.vertex_graph(), 4, seed=0)
        layout = SPMDLayout.build(prob.mesh.edges, labels)
        rng = np.random.default_rng(0)
        q = prob.initial.flat() + 0.05 * rng.standard_normal(
            prob.disc.num_unknowns)
        return prob, layout, q

    def test_pool_ops_stay_bitwise_with_checks_armed(self, problem,
                                                     monkeypatch):
        from repro.parallel import (ProcPool, distributed_matvec,
                                    distributed_residual)

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert enabled()
        prob, layout, q = problem
        a = prob.disc.assemble_jacobian(q)
        # The pool must be created under the flag: workers inherit it at
        # fork, and the partition/echo instrumentation arms in __init__.
        with ProcPool(layout, prob.disc, nworkers=2) as pool:
            f_seq = distributed_residual(prob.disc, layout, q,
                                         executor="seq")
            f_proc = distributed_residual(prob.disc, layout, q,
                                          executor=pool)
            assert np.array_equal(f_seq, f_proc)
            y_seq = distributed_matvec(a, layout, q, executor="seq")
            y_proc = distributed_matvec(a, layout, q, executor=pool)
            assert np.array_equal(y_seq, y_proc)

    def test_trails_agree_across_executors(self, problem, monkeypatch):
        from repro.parallel import ProcPool, distributed_residual

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        prob, layout, q = problem
        with ProcPool(layout, prob.disc, nworkers=2) as pool:
            with capture("seq") as seq_trail:
                distributed_residual(prob.disc, layout, q, executor="seq")
            with capture("proc") as proc_trail:
                distributed_residual(prob.disc, layout, q, executor=pool)
        assert len(seq_trail) == len(proc_trail) == 1
        assert first_divergence(seq_trail, proc_trail) is None
