"""GMRES: convergence, restarts, orthogonalisation, preconditioning."""

import numpy as np
import pytest

from repro.precond import  IdentityPC
from repro.solvers import gmres
from repro.solvers.krylov_base import (OperatorFromCallable,
                                       OperatorFromMatrix, as_operator)
from repro.sparse import CSRMatrix, ilu_csr


def spd_like(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) * 0.2
    a += np.eye(n) * 4
    return a


class TestBasics:
    def test_solves_dense(self, rng):
        a = spd_like(50, 0)
        b = rng.random(50)
        res = gmres(a, b, rtol=1e-12, restart=30, maxiter=500)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-9)

    def test_solves_csr(self, rng):
        a = spd_like(50, 1)
        m = CSRMatrix.from_dense(a)
        b = rng.random(50)
        res = gmres(m, b, rtol=1e-10)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-7)

    def test_matrix_free_callable(self, rng):
        a = spd_like(30, 2)
        b = rng.random(30)
        op = OperatorFromCallable(lambda v: a @ v, 30)
        res = gmres(op, b, rtol=1e-10)
        assert res.converged

    def test_zero_rhs(self):
        a = spd_like(10, 3)
        res = gmres(a, np.zeros(10))
        assert res.converged
        assert np.allclose(res.x, 0)

    def test_exact_initial_guess(self, rng):
        a = spd_like(10, 4)
        x = rng.random(10)
        res = gmres(a, a @ x, x0=x, rtol=1e-12)
        assert res.converged
        assert res.iterations == 0

    def test_identity_converges_one_iteration(self, rng):
        b = rng.random(20)
        res = gmres(np.eye(20), b, rtol=1e-12)
        assert res.converged
        assert res.iterations <= 1


class TestResidualTracking:
    def test_residual_monotone_within_cycle(self, rng):
        a = spd_like(60, 5)
        b = rng.random(60)
        res = gmres(a, b, rtol=1e-12, restart=60, maxiter=60)
        r = np.array(res.residual_norms)
        assert np.all(np.diff(r) <= 1e-9 * r[:-1] + 1e-14)

    def test_reported_final_residual_true(self, rng):
        a = spd_like(40, 6)
        b = rng.random(40)
        res = gmres(a, b, rtol=1e-8)
        true = np.linalg.norm(b - a @ res.x)
        # Givens estimate and true residual agree closely.
        assert abs(true - res.final_residual) <= 1e-6 * np.linalg.norm(b)

    def test_maxiter_respected(self, rng):
        a = spd_like(80, 7) - 3.8 * np.eye(80)   # hard: nearly singular
        b = rng.random(80)
        res = gmres(a, b, rtol=1e-14, maxiter=25, restart=10)
        assert res.iterations <= 25


class TestRestart:
    def test_restarted_still_converges(self, rng):
        a = spd_like(60, 8)
        b = rng.random(60)
        res = gmres(a, b, rtol=1e-10, restart=5, maxiter=400)
        assert res.converged

    def test_small_restart_needs_more_iterations(self, rng):
        a = spd_like(60, 9) - 2.0 * np.eye(60)
        b = rng.random(60)
        its = {}
        for m in (5, 60):
            its[m] = gmres(a, b, rtol=1e-8, restart=m, maxiter=1000).iterations
        assert its[5] >= its[60]


class TestOrthogonalization:
    @pytest.mark.parametrize("orth", ["mgs", "cgs"])
    def test_both_converge_same_count(self, orth, rng):
        a = spd_like(50, 10)
        b = rng.random(50)
        res = gmres(a, b, rtol=1e-10, orthog=orth)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-7)

    def test_mgs_cgs_agree(self, rng):
        a = spd_like(50, 11)
        b = rng.random(50)
        x1 = gmres(a, b, rtol=1e-11, orthog="mgs").x
        x2 = gmres(a, b, rtol=1e-11, orthog="cgs").x
        assert np.allclose(x1, x2, atol=1e-7)


class TestPreconditioning:
    def test_ilu_reduces_iterations(self, rng):
        n = 120
        a = spd_like(n, 12) + np.diag(np.linspace(0, 30, n))
        m = CSRMatrix.from_dense(a)
        b = rng.random(n)
        plain = gmres(m, b, rtol=1e-10, maxiter=500)
        pc = ilu_csr(m, 1)
        precond = gmres(m, b, M=pc, rtol=1e-10, maxiter=500)
        assert precond.converged
        assert precond.iterations < plain.iterations
        assert np.allclose(a @ precond.x, b, atol=1e-6)

    def test_right_preconditioning_true_residuals(self, rng):
        """With right PC the tracked norms are unpreconditioned ones."""
        a = spd_like(40, 13)
        m = CSRMatrix.from_dense(a)
        b = rng.random(40)
        res = gmres(m, b, M=ilu_csr(m, 0), rtol=1e-9)
        true = np.linalg.norm(b - a @ res.x)
        assert abs(true - res.final_residual) <= 1e-6 * np.linalg.norm(b)

    def test_identity_pc_equals_no_pc(self, rng):
        a = spd_like(30, 14)
        b = rng.random(30)
        r1 = gmres(a, b, rtol=1e-10)
        r2 = gmres(a, b, M=IdentityPC(), rtol=1e-10)
        assert r1.iterations == r2.iterations


class TestOperators:
    def test_as_operator_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_operator("nope")

    def test_callable_needs_n(self):
        with pytest.raises(ValueError):
            as_operator(lambda v: v)

    def test_matvec_counting(self, rng):
        a = spd_like(20, 15)
        op = OperatorFromMatrix(a)
        gmres(op, rng.random(20), rtol=1e-8)
        assert op.nmatvecs > 0
