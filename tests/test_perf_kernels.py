"""Property tests for the PR-1 hot-path kernels.

The schedule-driven ILU numeric refactorisation must reproduce the
row-loop reference (`ilu_csr_ref`/`ilu_bsr_ref`) on arbitrary random
patterns, `KrylovWorkspace` reuse must not perturb a single iterate,
and the loop oracles must hold their dtype so fp32 comparisons stay
meaningful.  Plus unit coverage for the `repro.perf` harness itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import compare_kernels, load_report, time_kernel, write_report
from repro.solvers import KrylovWorkspace, gmres, gmres_ref, solve_dtype
from repro.sparse import CSRMatrix, ilu_csr, ilu_csr_ref
from repro.sparse.bsr import BSRMatrix
from repro.sparse.ilu import compile_elimination_schedule, ilu_bsr, \
    ilu_bsr_ref, ilu_symbolic
from repro.sparse.spmv import spmv_csr_loop, spmv_csr_numpy
from repro.sparse.trisolve import _row_dot


def random_csr(n, density, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < density) * rng.standard_normal((n, n))
    np.fill_diagonal(dense, np.abs(np.diag(dense)) + n)
    return CSRMatrix.from_dense(dense)


def random_bsr(nb, bs, density, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random((nb, nb)) < density
    np.fill_diagonal(mask, True)
    indptr = [0]
    indices: list[int] = []
    blocks = []
    for i in range(nb):
        cols = np.flatnonzero(mask[i])
        for j in cols:
            b = rng.standard_normal((bs, bs))
            if i == j:
                b += np.eye(bs) * (bs * nb)
            blocks.append(b)
        indices.extend(cols.tolist())
        indptr.append(len(indices))
    return BSRMatrix(np.array(indptr, dtype=np.int64),
                     np.array(indices, dtype=np.int64),
                     np.array(blocks), nb)


# --- schedule-driven ILU == row-loop reference ------------------------

@settings(deadline=None, max_examples=25)
@given(st.integers(5, 40), st.floats(0.05, 0.4), st.integers(0, 2),
       st.integers(0, 10_000))
def test_ilu_csr_matches_row_loop_bitwise(n, density, fill, seed):
    """The batched CSR factorisation applies the *same* update sequence
    per row as the reference, so the factors agree bitwise."""
    a = random_csr(n, density, seed)
    pat = ilu_symbolic(a.indptr, a.indices, fill)
    new, ref = ilu_csr(a, pattern=pat), ilu_csr_ref(a, pattern=pat)
    assert np.array_equal(new.l_data, ref.l_data)
    assert np.array_equal(new.u_data, ref.u_data)
    assert np.array_equal(new.inv_diag, ref.inv_diag)


@settings(deadline=None, max_examples=15)
@given(st.integers(4, 16), st.integers(2, 5), st.floats(0.1, 0.4),
       st.integers(0, 2), st.integers(0, 10_000))
def test_ilu_bsr_matches_row_loop(nb, bs, density, fill, seed):
    """Block factors agree to reassociation tolerance (np.matmul in the
    batched path vs per-block dot in the loop)."""
    a = random_bsr(nb, bs, density, seed)
    pat = ilu_symbolic(a.indptr, a.indices, fill)
    new, ref = ilu_bsr(a, pattern=pat), ilu_bsr_ref(a, pattern=pat)
    assert np.allclose(new.l_data, ref.l_data, rtol=1e-12, atol=1e-13)
    assert np.allclose(new.u_data, ref.u_data, rtol=1e-12, atol=1e-13)
    assert np.allclose(new.inv_diag, ref.inv_diag, rtol=1e-12, atol=1e-13)


def test_schedule_cached_on_pattern_and_reused():
    a = random_csr(30, 0.2, seed=3)
    pat = ilu_symbolic(a.indptr, a.indices, 1)
    ilu_csr(a, pattern=pat)
    sched = pat._schedule
    assert sched is not None
    ilu_csr(a, pattern=pat)
    assert pat._schedule is sched          # no recompilation
    b = random_csr(30, 0.2, seed=3)        # same sparsity, new arrays
    ilu_csr(b, pattern=pat)
    assert pat._schedule is sched


def test_schedule_zero_pivot_detected():
    dense = np.array([[2.0, 1.0], [4.0, 2.0]])   # row 2 pivot eliminates to 0
    a = CSRMatrix.from_dense(dense)
    with pytest.raises(ZeroDivisionError):
        ilu_csr(a, 0)


def test_compile_schedule_stage_dsts_unique():
    """Within one wavefront stage every update target is distinct —
    the invariant that lets the numeric loop use a plain fancy-indexed
    subtraction instead of a scatter-accumulate."""
    a = random_csr(60, 0.15, seed=7)
    pat = ilu_symbolic(a.indptr, a.indices, 2)
    sched = compile_elimination_schedule(pat, a.indptr, a.indices)
    assert sched.stages
    for st_ in sched.stages:
        assert np.unique(st_.dst).size == st_.dst.size


# --- KrylovWorkspace --------------------------------------------------

def _dominant_system(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a[np.abs(a) < 0.8] = 0.0
    a += np.eye(n) * (np.abs(a).sum(axis=1).max() + 1.0)
    return a, rng.random(n)


@settings(deadline=None, max_examples=15)
@given(st.integers(8, 40), st.integers(0, 10_000))
def test_workspace_reuse_identical_iterates(n, seed):
    """Solving twice through one workspace is bitwise-identical to two
    fresh-allocation solves — reset() restores a clean slate."""
    a, b = _dominant_system(n, seed)
    ws = KrylovWorkspace()
    kw = dict(rtol=1e-10, restart=8, maxiter=10 * n)
    r1 = gmres(a, b, workspace=ws, **kw)
    allocs = ws.allocations
    r2 = gmres(a, b, workspace=ws, **kw)
    fresh = gmres(a, b, **kw)
    assert ws.allocations == allocs        # second solve reused buffers
    assert np.array_equal(r1.x, r2.x)
    assert np.array_equal(r1.x, fresh.x)
    assert r1.iterations == r2.iterations == fresh.iterations


def test_gmres_matches_pre_pr_reference_bitwise():
    a, b = _dominant_system(50, seed=11)
    for kw in (dict(restart=12, maxiter=200),
               dict(restart=7, maxiter=35, rtol=1e-12)):
        new = gmres(a, b, **kw)
        ref = gmres_ref(a, b, **kw)
        assert np.array_equal(new.x, ref.x)
        assert new.iterations == ref.iterations
        assert new.residual_norms == ref.residual_norms


def test_workspace_honors_float32():
    a, b = _dominant_system(30, seed=5)
    res = gmres(a.astype(np.float32), b.astype(np.float32),
                rtol=1e-5, restart=10, maxiter=300)
    assert res.x.dtype == np.float32
    assert np.allclose(a @ res.x.astype(np.float64), b, atol=1e-3)


def test_solve_dtype_policy():
    assert solve_dtype(np.float32) == np.float32
    assert solve_dtype(np.float64) == np.float64
    assert solve_dtype(np.int64) == np.float64     # ints promote


def test_workspace_reallocates_on_growth_only():
    ws = KrylovWorkspace()
    ws.ensure(100, 10)
    n0 = ws.allocations
    ws.ensure(100, 10)
    assert ws.allocations == n0
    ws.ensure(200, 10)
    assert ws.allocations > n0
    assert ws.nbytes() > 0


# --- dtype preservation in the loop/level kernels ---------------------

def test_row_dot_preserves_dtype():
    a = random_csr(20, 0.3, seed=2)
    for dt in (np.float32, np.float64):
        x = np.linspace(0.0, 1.0, 20).astype(dt)
        rows = np.arange(0, 20, 2, dtype=np.int64)
        out = _row_dot(a.indptr, a.indices, a.data, x, rows)
        assert out.dtype == dt
        dense = a.to_dense().astype(dt)
        assert np.allclose(out, dense[rows] @ x, atol=1e-5)


def test_spmv_loop_oracle_matches_under_fp32():
    a = random_csr(25, 0.3, seed=4)
    a32 = CSRMatrix(a.indptr, a.indices, a.data.astype(np.float32), a.ncols)
    x32 = np.random.default_rng(0).random(25).astype(np.float32)
    y_loop = spmv_csr_loop(a32, x32)
    y_vec = spmv_csr_numpy(a32, x32)
    assert y_loop.dtype == np.float32
    assert y_vec.dtype == np.float32
    assert np.allclose(y_loop, y_vec, rtol=1e-5, atol=1e-6)


# --- perf harness -----------------------------------------------------

def test_time_kernel_and_compare(tmp_path):
    calls = {"n": 0}

    def work():
        calls["n"] += 1

    r = time_kernel("noop", work, repeats=3, warmup=2)
    assert calls["n"] == 5
    assert len(r.times) == 3 and r.median_s >= 0.0
    cmp_ = compare_kernels("pair", work, work, repeats=3)
    assert cmp_["speedup"] > 0.0

    path = write_report(tmp_path / "BENCH_kernels.json",
                        {"pair": cmp_, "noop": r.as_dict()},
                        meta={"mesh": "unit-test"})
    doc = load_report(path)
    assert doc["meta"]["mesh"] == "unit-test"
    assert doc["kernels"]["pair"]["name"] == "pair"


def test_load_report_rejects_unknown_schema(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text('{"schema_version": 99, "kernels": {}}')
    with pytest.raises(ValueError):
        load_report(p)


def test_git_sha_attributes_this_checkout():
    """In this repo the helper must resolve HEAD; the short form is a
    prefix of the full one (the attribution key reports carry)."""
    from repro.perf import git_sha

    short, full = git_sha(), git_sha(short=False)
    assert short and full
    assert full.startswith(short)
    assert all(c in "0123456789abcdef" for c in full)


def test_git_sha_none_outside_a_checkout(monkeypatch):
    """Outside a git checkout the key is None, not an exception."""
    import subprocess as sp

    from repro.perf import regress

    def no_git(*a, **k):
        raise OSError("git not found")

    monkeypatch.setattr(regress.subprocess, "run", no_git)
    assert regress.git_sha() is None
    monkeypatch.setattr(
        regress.subprocess, "run",
        lambda *a, **k: sp.CompletedProcess(a, 128, stdout="", stderr=""))
    assert regress.git_sha() is None
