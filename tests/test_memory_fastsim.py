"""Fast vectorised cache engine vs the CacheSim oracle.

The contract of :mod:`repro.memory.fastsim` is *bitwise identity*:
for any trace, geometry, and batching, the fast engine's counters and
miss masks equal the per-reference :class:`CacheSim` oracle's.  These
tests check that over the three algorithm regimes (direct-mapped,
2-way, general A-way / fully associative), over batch boundaries
(warm-stack replay), and under forced chunking, plus the
consecutive-same-line collapse neutrality the preprocessing relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.memory.fastsim as fastsim
from repro.memory import CacheConfig, CacheSim, MemoryHierarchy
from repro.memory.fastsim import (FastCacheSim, _prefix_smaller_counts,
                                  collapse_trace, fast_simulate_trace)
from repro.memory.tlb import TLBConfig, tlb_sim

GEOMETRIES = [
    CacheConfig("dm", 1024, 32, 1),            # direct-mapped, 32 sets
    CacheConfig("2way", 1024, 32, 2),          # the R10000 L1/L2 shape
    CacheConfig("4way", 2048, 64, 4),          # general path, 8 sets
    CacheConfig("8way", 4096, 32, 8),          # general path, 16 sets
    CacheConfig("fa", 16 * 32, 32, 16),        # fully associative
]


def both(config, addrs, batches=1, seed=0):
    """Run ref and fast sims over the same batched trace; return both."""
    ref, fast = CacheSim(config), FastCacheSim(config)
    if batches > 1:
        rng = np.random.default_rng(seed)
        cuts = np.sort(rng.integers(0, addrs.size + 1, size=batches - 1))
        pieces = np.split(addrs, cuts)
    else:
        pieces = [addrs]
    for piece in pieces:
        mr = ref.access(piece, record_misses=True)
        mf = fast.access(piece, record_misses=True)
        assert np.array_equal(mr, mf), "miss masks diverge"
    return ref, fast


addr_lists = st.lists(st.integers(0, 8_000), min_size=1, max_size=300)


@settings(deadline=None, max_examples=25)
@given(addr_lists, st.sampled_from(GEOMETRIES), st.sampled_from([1, 3]))
def test_property_bitwise_identical(addr_list, config, batches):
    """Counters and masks match the oracle for every geometry regime,
    with and without warm-stack carry-over across access() batches."""
    addrs = np.array(addr_list, dtype=np.int64) * 8
    ref, fast = both(config, addrs, batches=batches)
    assert (ref.accesses, ref.misses) == (fast.accesses, fast.misses)


@settings(deadline=None, max_examples=15)
@given(addr_lists, st.integers(1, 6))
def test_property_fully_associative_tlb(addr_list, entries_log2):
    """The TLB path (one set, large associativity) matches the oracle."""
    entries = 1 << entries_log2
    tcfg = TLBConfig("tlb", entries, 256)
    addrs = np.array(addr_list, dtype=np.int64) * 64
    ref = tlb_sim(tcfg, engine="ref")
    fast = tlb_sim(tcfg, engine="fast")
    ref.access(addrs)
    fast.access(addrs)
    assert (ref.accesses, ref.misses) == (fast.accesses, fast.misses)


@settings(deadline=None, max_examples=15)
@given(addr_lists, st.sampled_from(GEOMETRIES))
def test_property_collapse_neutral(addr_list, config):
    """Dropping consecutive same-line references never changes the miss
    count: each dropped reference re-touches its set's MRU line, a
    guaranteed hit at any associativity.  Proven against the oracle."""
    addrs = np.array(addr_list, dtype=np.int64) * 8
    full = CacheSim(config)
    full.access(addrs)
    collapsed, kept = collapse_trace(addrs, config.line_bytes)
    part = CacheSim(config)
    part.access(collapsed)
    assert part.misses == full.misses
    assert kept.size == collapsed.size


def test_streaming_runs_collapse_and_match():
    """Word-sized walks through lines (the SpMV/flux access pattern)
    are the collapse's target workload; check identity there."""
    addrs = np.arange(0, 64 * 1024, 8, dtype=np.int64)      # streaming
    addrs = np.concatenate([addrs, addrs[::-1], addrs[::2]])
    for config in GEOMETRIES:
        ref, fast = both(config, addrs)
        assert ref.misses == fast.misses


def test_chunked_batches_identical(monkeypatch):
    """Forcing tiny chunks (the guard against the dominance count's
    superlinear cost on multi-million-reference batches) must not
    change a single counter: each chunk warm-starts from the previous
    chunk's exact resident stack."""
    rng = np.random.default_rng(7)
    addrs = rng.integers(0, 1 << 16, size=5000) * 8
    tcfg = CacheConfig("fa", 32 * 64, 64, 32)
    baseline = fast_simulate_trace(addrs, tcfg)
    monkeypatch.setattr(fastsim, "_CHUNK", 128)
    chunked = fast_simulate_trace(addrs, tcfg)
    assert (chunked.accesses, chunked.misses) == \
        (baseline.accesses, baseline.misses)
    ref = CacheSim(tcfg)
    ref.access(addrs)
    assert chunked.misses == ref.misses


def test_warm_stack_survives_many_batches():
    """LRU state carried across many small access() calls equals one
    big call — the stack replay is exact, not approximate."""
    rng = np.random.default_rng(3)
    addrs = rng.integers(0, 4096, size=2000) * 8
    for config in GEOMETRIES:
        one = FastCacheSim(config)
        one.access(addrs)
        many = FastCacheSim(config)
        for piece in np.array_split(addrs, 23):
            many.access(piece)
        assert (one.accesses, one.misses) == (many.accesses, many.misses)


def test_prefix_smaller_counts_vs_bruteforce():
    """The bucket-grid dominance count against the O(m*q) definition."""
    rng = np.random.default_rng(11)
    for m, q in [(1, 1), (7, 3), (100, 40), (500, 211), (2000, 5)]:
        keys = rng.permutation(m).astype(np.int64)
        qpos = rng.integers(0, m + 1, size=q).astype(np.int64)
        qrank = rng.integers(0, m + 1, size=q).astype(np.int64)
        got = _prefix_smaller_counts(keys, qpos, qrank)
        want = np.array([(keys[:p] < r).sum() for p, r in zip(qpos, qrank)],
                        dtype=np.int64)
        assert np.array_equal(got, want)


def test_hierarchy_engines_identical():
    """End-to-end: L1 + L1-miss-filtered L2 + TLB counters match
    between the fast and oracle engines on a mixed trace."""
    from repro.perfmodel.machines import ORIGIN2000_R10K

    rng = np.random.default_rng(5)
    machine = ORIGIN2000_R10K.scaled_caches(256.0)
    stream = np.arange(0, 1 << 15, 8, dtype=np.int64)
    scatter = rng.integers(0, 1 << 18, size=20_000) * 8
    trace = np.concatenate([stream, scatter, stream])
    counters = {}
    for engine in ("ref", "fast"):
        h = MemoryHierarchy(machine.l1, machine.l2, machine.tlb,
                            engine=engine)
        h.run(trace)
        h.run(scatter)          # second batch exercises warm caches
        counters[engine] = h.counters.row()
    assert counters["ref"] == counters["fast"]


def test_empty_and_degenerate_batches():
    for config in GEOMETRIES:
        fast = FastCacheSim(config)
        mask = fast.access(np.empty(0, dtype=np.int64), record_misses=True)
        assert mask.size == 0 and fast.accesses == 0
        fast.access(np.zeros(10, dtype=np.int64))        # one line only
        assert (fast.accesses, fast.misses) == (10, 1)
        fast.access(np.zeros(3, dtype=np.int64))         # fully collapsed
        assert (fast.accesses, fast.misses) == (13, 1)
        fast.reset()
        assert fast.accesses == 0 and fast.misses == 0


@pytest.mark.parametrize("engine", ["ref", "fast"])
def test_make_cache_sim_engines(engine):
    from repro.memory.cache import make_cache_sim, simulate_trace

    sim = make_cache_sim(GEOMETRIES[1], engine)
    addrs = np.array([0, 0, 32, 32, 64], dtype=np.int64)
    mask = sim.access(addrs, record_misses=True)
    assert mask.tolist() == [True, False, True, False, True]
    c = simulate_trace(addrs, GEOMETRIES[1], engine=engine)
    assert (c.accesses, c.misses) == (5, 3)


def test_unknown_engine_rejected():
    from repro.memory.cache import make_cache_sim

    with pytest.raises(ValueError):
        make_cache_sim(GEOMETRIES[0], engine="magic")
