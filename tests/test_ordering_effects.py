"""Second-order ordering effects: ILU fill, Sloan-as-ordering, IDW."""

import numpy as np

from repro.euler import wing_problem
from repro.mesh import (VertexOrdering, apply_orderings, order_vertices,
                        shuffle_vertices, unit_cube_mesh)
from repro.sparse import ilu_symbolic


class TestOrderingAffectsILUFill:
    """Fill-in of ILU(k>0) depends on the elimination order: the
    bandwidth-reducing orderings confine fill near the diagonal — an
    extra (unstated) benefit of the paper's RCM choice."""

    def _fill(self, mesh, k=2):
        from repro.sparse import block_structure_from_edges
        st = block_structure_from_edges(mesh.num_vertices, mesh.edges)
        return ilu_symbolic(st.indptr, st.indices, k).nnz

    def test_rcm_reduces_high_level_fill(self):
        base = shuffle_vertices(unit_cube_mesh(7, jitter=0.2), seed=5)
        random_fill = self._fill(apply_orderings(base, "random", "sorted"))
        rcm_fill = self._fill(apply_orderings(base, "rcm", "sorted"))
        assert rcm_fill < random_fill

    def test_ilu0_fill_order_independent(self):
        base = shuffle_vertices(unit_cube_mesh(6, jitter=0.2), seed=5)
        f1 = self._fill(apply_orderings(base, "random", "sorted"), k=0)
        f2 = self._fill(apply_orderings(base, "rcm", "sorted"), k=0)
        assert f1 == f2     # ILU(0) pattern = matrix pattern, any order


class TestSloanOrdering:
    def test_sloan_in_vertex_ordering_enum(self):
        assert VertexOrdering("sloan") is VertexOrdering.SLOAN

    def test_sloan_permutation(self, small_mesh):
        perm = order_vertices(small_mesh, "sloan")
        assert np.array_equal(np.sort(perm),
                              np.arange(small_mesh.num_vertices))

    def test_sloan_layout_improves_locality(self):
        from repro.mesh import mesh_locality_report
        base = shuffle_vertices(unit_cube_mesh(8, jitter=0.2), seed=4)
        rep_rand = mesh_locality_report(apply_orderings(base, "random",
                                                        "sorted"))
        rep_sloan = mesh_locality_report(apply_orderings(base, "sloan",
                                                         "sorted"))
        assert rep_sloan.edge_span["mean"] < rep_rand.edge_span["mean"] / 3

    def test_solver_runs_on_sloan_layout(self):
        from repro.core import NKSSolver, SolverConfig
        prob = wing_problem(6, 5, 4, vertex_ordering="sloan")
        rep = NKSSolver(prob.disc, SolverConfig(
            matrix_free=True, max_steps=20,
            target_reduction=1e-5)).solve(prob.initial.flat())
        assert rep.converged


class TestIDWConstants:
    def test_constant_field_preserved_exactly(self):
        """IDW weights sum to one, so constants transfer exactly — the
        conservation sanity of the sequencing transfer."""
        from repro.core.sequencing import interpolate_state
        coarse = wing_problem(6, 5, 4, seed=0)
        fine = wing_problem(9, 7, 5, seed=0)
        qc = np.full((coarse.mesh.num_vertices, 4),
                     [3.0, -1.0, 0.5, 2.0])
        qf = interpolate_state(coarse, fine, qc.ravel()).reshape(-1, 4)
        assert np.allclose(qf, [3.0, -1.0, 0.5, 2.0], atol=1e-12)
