"""The `python -m repro.experiments` command-line runner."""

import subprocess
import sys

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_no_subcommand_is_usage_error(self, capsys):
        """Omitting the subcommand exits 2 and lists the valid names
        on stderr (scripts that forget the argument must fail)."""
        assert main([]) == 2
        err = capsys.readouterr().err
        for name in EXPERIMENTS:
            assert name in err
        assert "all" in err

    def test_registry_complete(self):
        """Every paper table/figure has a CLI entry."""
        expected = {"table1", "table2", "table2-dedup", "table3",
                    "table3-measured", "table4", "table5",
                    "table5-measured", "fig1", "fig2", "fig3", "fig4",
                    "fig5", "eqbounds", "scaling", "service"}
        assert expected == set(EXPERIMENTS)

    def test_run_one(self, capsys):
        assert main(["eqbounds"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 1/2" in out
        assert "[eqbounds:" in out

    def test_bad_name_rejected(self, capsys):
        assert main(["tableX"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "table3" in err       # the listing accompanies the error

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 2
        assert "table3" in proc.stderr
