"""The `python -m repro.experiments` command-line runner."""

import subprocess
import sys

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_listing(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_registry_complete(self):
        """Every paper table/figure has a CLI entry."""
        expected = {"table1", "table2", "table2-dedup", "table3",
                    "table3-measured", "table4", "table5",
                    "table5-measured", "fig1", "fig2", "fig3", "fig4",
                    "fig5", "eqbounds", "scaling"}
        assert expected == set(EXPERIMENTS)

    def test_run_one(self, capsys):
        assert main(["eqbounds"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 1/2" in out
        assert "[eqbounds:" in out

    def test_bad_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "table3" in proc.stdout
