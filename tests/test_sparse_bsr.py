"""Block CSR (BAIJ) tests: equivalence with expanded point CSR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import BSRMatrix


def random_bsr(nb, bs, density, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random((nb, nb)) < density
    np.fill_diagonal(mask, True)
    br, bc = np.nonzero(mask)
    blocks = rng.standard_normal((br.size, bs, bs))
    diag = br == bc
    blocks[diag] += 5 * np.eye(bs)
    return BSRMatrix.from_block_coo(br, bc, blocks, (nb, nb))


class TestConstruction:
    def test_shape(self):
        m = random_bsr(5, 3, 0.4, 0)
        assert m.shape == (15, 15)
        assert m.bs == 3

    def test_duplicates_summed(self):
        blocks = np.ones((2, 2, 2))
        m = BSRMatrix.from_block_coo([0, 0], [1, 1], blocks, (2, 2))
        assert m.nnzb == 1
        assert np.allclose(m.data[0], 2.0)

    def test_bad_data_shape_rejected(self):
        with pytest.raises(ValueError):
            BSRMatrix(indptr=np.array([0, 1]), indices=np.array([0]),
                      data=np.ones((1, 2, 3)), nbcols=1)


class TestEquivalence:
    @pytest.mark.parametrize("bs", [1, 2, 4, 5])
    def test_matvec_matches_csr_expansion(self, bs, rng):
        m = random_bsr(6, bs, 0.4, bs)
        x = rng.random(6 * bs)
        assert np.allclose(m @ x, m.to_csr() @ x)

    def test_to_csr_matches_scipy_bsr(self, rng):
        import scipy.sparse as sp
        m = random_bsr(5, 3, 0.5, 7)
        ref = sp.bsr_matrix((m.data, m.indices, m.indptr), shape=m.shape)
        assert np.allclose(m.to_csr().to_dense(), ref.toarray())

    def test_diag_blocks(self):
        m = random_bsr(5, 2, 0.4, 3)
        dense = m.to_csr().to_dense()
        dblocks = m.diag_blocks()
        for i in range(5):
            assert np.allclose(dblocks[i], dense[2*i:2*i+2, 2*i:2*i+2])

    def test_add_block_diagonal(self, rng):
        m = random_bsr(4, 3, 0.5, 4)
        shift = rng.standard_normal((4, 3, 3))
        m2 = m.add_block_diagonal(shift)
        diff = m2.to_csr().to_dense() - m.to_csr().to_dense()
        for i in range(4):
            assert np.allclose(diff[3*i:3*i+3, 3*i:3*i+3], shift[i])

    def test_submatrix(self, rng):
        m = random_bsr(6, 2, 0.5, 5)
        rows = np.array([0, 2, 5])
        sub = m.submatrix(rows)
        dense = m.to_csr().to_dense()
        pt = np.concatenate([[2 * r, 2 * r + 1] for r in rows])
        assert np.allclose(sub.to_csr().to_dense(), dense[np.ix_(pt, pt)])

    def test_permuted(self, rng):
        m = random_bsr(5, 2, 0.5, 6)
        perm = rng.permutation(5)
        p = m.permuted(perm)
        dense = m.to_csr().to_dense()
        pt = np.concatenate([[2 * r, 2 * r + 1] for r in perm])
        assert np.allclose(p.to_csr().to_dense(), dense[np.ix_(pt, pt)])

    def test_astype(self):
        m = random_bsr(4, 2, 0.5, 8)
        assert m.astype(np.float32).data.dtype == np.float32


@settings(deadline=None, max_examples=15)
@given(st.integers(2, 6), st.integers(1, 4), st.integers(0, 50))
def test_property_bsr_csr_agree(nb, bs, seed):
    m = random_bsr(nb, bs, 0.5, seed)
    x = np.random.default_rng(seed).random(nb * bs)
    assert np.allclose(m @ x, m.to_csr() @ x, atol=1e-10)
