"""The compiled kernel tier against its numpy oracles.

Equivalence comes in two strengths, and each test pins the right one:

* **bitwise** — the scatter and scalar-CSR kernels (edge_scatter2,
  spmv_csr, CSR trisolve in both f64 and f32 factor storage, the
  Jacobian assembly scatter) accumulate in exactly the oracle's order
  (``np.bincount`` sums sequentially in occurrence order, and so do
  the compiled loops), so ``np.array_equal`` must hold;
* **normwise** — the block kernels (spmv_bsr, block trisolve, the
  SPMD gather-SpMV) sum block columns sequentially where ``np.einsum``
  uses SIMD pairwise order.  Raw ULP distance inflates on near-zero
  entries through cancellation, so the bound is relative to the result
  norm (machine-epsilon scale), not per-element.

On a machine with neither numba nor cffi+cc the dispatchers return
None/False and every "compiled" path below collapses onto the oracle;
the equivalence assertions then hold trivially and the dedicated
degradation tests pin that behaviour explicitly.
"""

import json
import warnings

import numpy as np
import pytest

from repro import kernels
from repro.core.config import (KrylovConfig, PreconditionerConfig,
                               SolverConfig)
from repro.core.driver import NKSSolver
from repro.euler import wing_problem
from repro.kernels import capability
from repro.parallel import SPMDLayout, distributed_matvec
from repro.partition import kway_partition
from repro.solvers.ptc import PTCConfig
from repro.sparse.ilu import ilu_bsr, ilu_csr
from repro.sparse.trisolve import _row_dot, _row_dot_blocks

HAS_BACKEND = capability.available_backends() != ()

needs_backend = pytest.mark.skipif(
    not HAS_BACKEND, reason="no compiled backend (numba/cffi+cc) available")


def assert_norm_close(got, ref):
    """Normwise machine-epsilon agreement (block-kernel contract)."""
    scale = max(1.0, float(np.abs(ref).max()))
    np.testing.assert_allclose(got, ref, rtol=0.0, atol=1e-12 * scale)


@pytest.fixture(scope="module")
def wing():
    """A perturbed tiny wing state plus its first-order Jacobian."""
    prob = wing_problem(7, 5, 4)
    rng = np.random.default_rng(7)
    q = prob.initial.flat() + 0.02 * rng.standard_normal(
        prob.disc.num_unknowns)
    jac = prob.disc.assemble_jacobian(q)
    return prob, q, jac


@pytest.fixture
def bare_machine(monkeypatch):
    """Fake a machine with no numba and no C toolchain."""
    capability.invalidate()
    monkeypatch.setattr(capability, "probe_numba", lambda: False)
    monkeypatch.setattr(capability, "probe_c", lambda: False)
    yield
    capability.invalidate()


class TestCapability:
    def test_numpy_resolves_to_itself(self):
        assert capability.resolve_engine("numpy") == "numpy"

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            capability.resolve_engine("cuda")

    def test_disable_env_forces_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS_DISABLE", "1")
        assert capability.available_backends() == ()
        assert capability.resolve_engine("compiled") == "numpy"

    def test_bare_machine_degrades_to_numpy(self, bare_machine):
        assert capability.available_backends() == ()
        assert capability.resolve_engine("compiled") == "numpy"

    def test_mark_unavailable_skips_backend(self):
        capability.invalidate()
        try:
            for name in capability.available_backends():
                capability.mark_unavailable(name)
            with warnings.catch_warnings():
                # Marking a working backend broken legitimately warns.
                warnings.simplefilter("ignore", RuntimeWarning)
                assert capability.resolve_engine("compiled") == "numpy"
        finally:
            capability.invalidate()

    def test_solver_config_validates_engine(self):
        with pytest.raises(ValueError, match="engine"):
            SolverConfig(engine="fortran")


@pytest.fixture
def broken_c_build(monkeypatch):
    """Numba absent, C toolchain present but the build fails."""
    from repro.kernels import cbackend
    capability.invalidate()
    monkeypatch.setattr(capability, "probe_numba", lambda: False)
    monkeypatch.setattr(cbackend, "_SOURCE", "#error deliberately broken\n")
    monkeypatch.setattr(kernels, "_BACKENDS", {})
    yield
    capability.invalidate()


class TestQuarantine:
    """Silent degradation is gone: broken backends carry their reason."""

    def test_broken_c_build_quarantined_and_warns(self, broken_c_build):
        if not capability.probe_c():
            pytest.skip("no C toolchain to break")
        with pytest.warns(RuntimeWarning, match="fell back to the numpy"):
            assert kernels.backend_for("compiled") is None
        rep = capability.capability_report()
        assert rep["resolved"] == "numpy"
        assert "c" in rep["broken"]
        q = rep["quarantine"]["c"]
        assert q["stage"] == "build"
        assert q["exc_type"] not in (None, "ModuleNotFoundError",
                                     "FileNotFoundError")
        assert q["message"]
        assert q["traceback_tail"]

    def test_fallback_warns_only_once(self, broken_c_build):
        if not capability.probe_c():
            pytest.skip("no C toolchain to break")
        with pytest.warns(RuntimeWarning):
            kernels.backend_for("compiled")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert capability.resolve_engine("compiled") == "numpy"

    def test_bare_machine_stays_silent(self, bare_machine):
        # Not-installed is the documented contract, not a failure.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert capability.resolve_engine("compiled") == "numpy"
        assert capability.capability_report()["broken"] == []

    def test_missing_compiler_recorded_as_benign(self, monkeypatch):
        capability.invalidate()
        monkeypatch.setattr(capability, "probe_numba", lambda: False)
        monkeypatch.setattr(capability.shutil, "which", lambda cc: None)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert capability.resolve_engine("compiled") == "numpy"
            q = capability.capability_report()["quarantine"]["c"]
            assert q["stage"] == "probe"
            assert q["exc_type"] == "FileNotFoundError"
        finally:
            capability.invalidate()

    def test_cli_prints_json_report(self, capsys):
        assert capability.main() == 0
        rep = json.loads(capsys.readouterr().out)
        assert set(rep) >= {"disabled", "available", "resolved",
                            "broken", "quarantine"}


class TestDispatchGuards:
    """Inputs outside a kernel's contract must fall back, not crash."""

    def test_bare_machine_dispatch_returns_none(self, bare_machine):
        e = np.array([0, 1], dtype=np.int64)
        w = np.ones((2, 3))
        assert kernels.edge_scatter2(e, e, w, w, 2, "compiled") is None

    def test_f32_weights_refused(self):
        e = np.array([0, 1], dtype=np.int64)
        w = np.ones((2, 3), dtype=np.float32)
        assert kernels.edge_scatter2(e, e, w, w, 2, "compiled") is None

    def test_f32_spmv_data_refused(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.int64)
        data = np.ones(1, dtype=np.float32)
        x = np.ones(1)
        assert kernels.spmv_csr(indptr, indices, data, x, "compiled") is None

    def test_mismatched_factor_dtypes_refused(self):
        indptr = np.array([0, 0], dtype=np.int64)
        indices = np.empty(0, dtype=np.int64)
        data = np.empty(0, dtype=np.float32)
        inv_diag = np.ones(1, dtype=np.float64)
        x = np.ones(1)
        assert kernels.upper_solve_csr(indptr, indices, data, inv_diag, x,
                                       [np.array([0])], "compiled") is False

    def test_oversized_block_refused(self):
        nb, bs = 2, kernels.MAX_BS + 1
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([0, 1], dtype=np.int64)
        data = np.ones((2, bs, bs))
        x = np.ones(nb * bs)
        assert kernels.spmv_bsr(indptr, indices, data, x, nb,
                                "compiled") is None


class TestBitwiseKernels:
    """The scatter/scalar-CSR family: compiled == numpy exactly."""

    def test_jacobian_assembly(self, wing):
        prob, q, jac = wing
        disc = prob.disc
        disc.engine = "compiled"
        try:
            got = disc.assemble_jacobian(q)
        finally:
            disc.engine = "numpy"
        assert np.array_equal(got.data, jac.data)
        assert np.array_equal(got.indptr, jac.indptr)

    def test_timestep_shift(self, wing):
        prob, q, jac = wing
        disc = prob.disc
        ref = disc.shifted_jacobian(q, cfl=25.0)
        disc.engine = "compiled"
        try:
            got = disc.shifted_jacobian(q, cfl=25.0)
        finally:
            disc.engine = "numpy"
        assert np.array_equal(got.data, ref.data)

    def test_spmv_csr(self, wing):
        _, q, jac = wing
        a = jac.to_csr()
        ac = a.copy()
        ac.engine = "compiled"
        rng = np.random.default_rng(3)
        x = rng.standard_normal(a.ncols)
        assert np.array_equal(ac.matvec(x), a.matvec(x))

    @pytest.mark.parametrize("storage", [np.float64, np.float32])
    def test_ilu_trisolve_csr(self, wing, storage):
        _, q, jac = wing
        a = jac.to_csr()
        ref = ilu_csr(a, fill_level=1, storage_dtype=storage)
        fac = ilu_csr(a, fill_level=1, storage_dtype=storage,
                      engine="compiled")
        rng = np.random.default_rng(5)
        b = rng.standard_normal(a.nrows)
        assert np.array_equal(fac.solve(b), ref.solve(b))


class TestNormwiseKernels:
    """The block family: sequential vs pairwise j-summation."""

    def test_residual_first_and_second_order(self, wing):
        """The fused Rusanov kernel computes the whole face flux —
        wave speed, left/right fluxes, dissipation — per edge in C,
        where the numpy oracle vectorises each sub-expression across
        all edges; the operation *order* inside one flux differs, so
        equivalence is normwise (it was bitwise when only the scatter
        was compiled)."""
        prob, q, _ = wing
        disc = prob.disc
        assert disc.engine == "numpy"
        for second in (False, True):
            ref = disc.residual(q, second_order=second)
            disc.engine = "compiled"
            try:
                got = disc.residual(q, second_order=second)
            finally:
                disc.engine = "numpy"
            assert_norm_close(got, ref)

    def test_spmv_bsr(self, wing):
        _, q, jac = wing
        jc = jac.copy()
        jc.engine = "compiled"
        rng = np.random.default_rng(11)
        x = rng.standard_normal(jac.shape[1])
        assert_norm_close(jc.matvec(x), jac.matvec(x))

    @pytest.mark.parametrize("storage", [np.float64, np.float32])
    def test_ilu_trisolve_bsr(self, wing, storage):
        _, q, jac = wing
        ref = ilu_bsr(jac, fill_level=1, storage_dtype=storage)
        fac = ilu_bsr(jac, fill_level=1, storage_dtype=storage,
                      engine="compiled")
        rng = np.random.default_rng(13)
        b = rng.standard_normal(jac.shape[0])
        got, want = fac.solve(b), ref.solve(b)
        if storage is np.float32:
            # f32 factors bound accuracy at f32 epsilon, engine aside.
            np.testing.assert_allclose(
                got, want, rtol=0.0,
                atol=1e-5 * max(1.0, float(np.abs(want).max())))
        else:
            assert_norm_close(got, want)

    def test_distributed_matvec(self, wing):
        prob, q, jac = wing
        labels = kway_partition(prob.mesh.vertex_graph(), 3, seed=0)
        layout = SPMDLayout.build(prob.mesh.edges, labels)
        rng = np.random.default_rng(17)
        x = rng.standard_normal(jac.shape[1])
        ref = distributed_matvec(jac, layout, x, executor="seq")
        jc = jac.copy()
        jc.engine = "compiled"
        got = distributed_matvec(jc, layout, x, executor="seq")
        assert_norm_close(got, ref)


class TestRowDotOracle:
    """_row_dot/_row_dot_blocks against explicit per-row accumulation."""

    @staticmethod
    def _csr(n, seed, dtype=np.float64):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 6, n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = rng.integers(0, n, indptr[-1]).astype(np.int64)
        data = rng.standard_normal(indptr[-1]).astype(dtype)
        return indptr, indices, data

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_row_dot_matches_sequential_loop(self, dtype):
        n = 40
        indptr, indices, data = self._csr(n, 23, dtype)
        rng = np.random.default_rng(29)
        x = rng.standard_normal(n)
        rows = np.arange(0, n, 3, dtype=np.int64)
        ref = np.zeros(rows.size)
        for k, i in enumerate(rows):
            acc = 0.0
            for t in range(indptr[i], indptr[i + 1]):
                acc += float(data[t]) * x[indices[t]]
            ref[k] = acc
        got = _row_dot(indptr, indices, data, x, rows)
        assert np.array_equal(got, ref)
        got_c = _row_dot(indptr, indices, data, x, rows, engine="compiled")
        if dtype is np.float64:
            # f64 subset-SpMV is in the bitwise family.
            assert np.array_equal(got_c, ref)
        else:
            # f32 data is refused by the dispatcher -> numpy path.
            assert np.array_equal(got_c, ref)

    def test_row_dot_blocks_matches_sequential_loop(self):
        n, bs = 20, 3
        rng = np.random.default_rng(31)
        counts = rng.integers(0, 4, n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = rng.integers(0, n, indptr[-1]).astype(np.int64)
        data = rng.standard_normal((indptr[-1], bs, bs))
        x = rng.standard_normal((n, bs))
        rows = np.arange(1, n, 2, dtype=np.int64)
        ref = np.zeros((rows.size, bs))
        for k, i in enumerate(rows):
            for t in range(indptr[i], indptr[i + 1]):
                ref[k] += data[t] @ x[indices[t]]
            # matmul accumulation order differs from einsum's: normwise.
        got = _row_dot_blocks(indptr, indices, data, x, rows, bs)
        assert_norm_close(got, ref)

    def test_empty_rows(self):
        indptr = np.zeros(5, dtype=np.int64)
        indices = np.empty(0, dtype=np.int64)
        data = np.empty(0)
        rows = np.arange(4, dtype=np.int64)
        got = _row_dot(indptr, indices, data, np.ones(4), rows,
                       engine="compiled")
        assert np.array_equal(got, np.zeros(4))


@needs_backend
class TestBackendPresent:
    """On this host a backend exists: the compiled path must actually
    run (returning arrays, not the None/False fallback signal)."""

    def test_backend_resolves(self):
        assert capability.resolve_engine("compiled") in ("numba", "c")
        assert kernels.backend_for("compiled") is not None

    def test_dispatch_returns_result(self):
        e0 = np.array([0, 1, 1], dtype=np.int64)
        e1 = np.array([1, 2, 0], dtype=np.int64)
        w = np.arange(6, dtype=np.float64).reshape(3, 2)
        out = kernels.edge_scatter2(e0, e1, w, 2.0 * w, 3, "compiled")
        assert out is not None
        a, b = out
        assert a.shape == b.shape == (3, 2)

    def test_levels_order_concatenates(self):
        levels = [np.array([0, 2]), np.array([1])]
        order = kernels.levels_order(levels)
        assert np.array_equal(order, [0, 2, 1])
        assert kernels.levels_order(levels) is order  # memoised


def _solver_cfg(engine, executor="local", max_steps=3):
    """Branch-free config: fixed Krylov work (rtol=0 runs every
    iteration), unreachable target, no order switching — so the only
    engine-visible difference is ULP-level block-kernel rounding."""
    return SolverConfig(
        ptc=PTCConfig(cfl0=10.0),
        max_steps=max_steps,
        target_reduction=1e-300,
        matrix_free=True,
        jacobian_lag=2,
        krylov=KrylovConfig(rtol=0.0, max_iterations=6, restart=6),
        precond=PreconditionerConfig(nparts=2, fill_level=1),
        executor=executor,
        nworkers=2 if executor == "proc" else None,
        engine=engine,
    )


def _run(prob, cfg):
    solver = NKSSolver(prob.disc, cfg)
    try:
        report = solver.solve(prob.initial.flat())
    finally:
        prob.disc.engine = "numpy"    # solver mutated the shared disc
    return report


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("executor", ["local", "seq", "proc"])
    def test_engines_agree(self, executor):
        prob = wing_problem(7, 5, 4)
        rep_np = _run(prob, _solver_cfg("numpy", executor))
        rep_c = _run(prob, _solver_cfg("compiled", executor))
        # Integer outputs are identical (branch-free config).
        assert len(rep_c.steps) == len(rep_np.steps)
        assert ([s.linear_iterations for s in rep_c.steps]
                == [s.linear_iterations for s in rep_np.steps])
        # Float outputs agree to accumulated-rounding level: the
        # block kernels differ at machine epsilon per apply, and ILU
        # conditioning amplifies that over steps (measured ~5e-9 rel
        # after 3 steps on this mesh).
        for sc, sn in zip(rep_c.steps, rep_np.steps):
            np.testing.assert_allclose(sc.fnorm, sn.fnorm,
                                       rtol=1e-6)

    def test_forced_fallback_is_bitwise(self, bare_machine):
        """Satellite: with no backend available, engine='compiled'
        must be the *same program* as engine='numpy' — bitwise."""
        prob = wing_problem(7, 5, 4)
        rep_np = _run(prob, _solver_cfg("numpy"))
        rep_c = _run(prob, _solver_cfg("compiled"))
        assert ([s.fnorm for s in rep_c.steps]
                == [s.fnorm for s in rep_np.steps])
        assert ([s.linear_iterations for s in rep_c.steps]
                == [s.linear_iterations for s in rep_np.steps])

    def test_disable_env_is_bitwise(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS_DISABLE", "1")
        capability.invalidate()
        prob = wing_problem(7, 5, 4)
        rep_np = _run(prob, _solver_cfg("numpy"))
        rep_c = _run(prob, _solver_cfg("compiled"))
        monkeypatch.delenv("REPRO_KERNELS_DISABLE")
        capability.invalidate()
        assert ([s.fnorm for s in rep_c.steps]
                == [s.fnorm for s in rep_np.steps])
