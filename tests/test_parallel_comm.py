"""Transport-agnostic communicator: seq is the oracle, every transport
must match it bitwise.

The seq transport is the historical in-process rank replay; the proc
transport is covered exhaustively by test_parallel_procpool; here the
focus is (a) the resolve rules, (b) the socket transport's
reduce/scatter unit suite (payloads really cross TCP sockets), and
(c) end-to-end socket collectives equal to the seq oracle.
"""

import numpy as np
import pytest

from repro.euler import wing_problem
from repro.parallel import (GhostExchange, SPMDLayout, distributed_dot,
                            distributed_matvec, distributed_residual)
from repro.parallel.comm import (Communicator, ProcCommunicator,
                                 SeqCommunicator, SocketCommunicator,
                                 resolve_communicator)
from repro.parallel.spmd import gather_structs, tree_reduce_sum
from repro.partition import kway_partition


@pytest.fixture(scope="module")
def setup():
    prob = wing_problem(7, 5, 4)
    labels = kway_partition(prob.mesh.vertex_graph(), 4, seed=0)
    layout = SPMDLayout.build(prob.mesh.edges, labels)
    rng = np.random.default_rng(0)
    q = prob.initial.flat() + 0.05 * rng.standard_normal(
        prob.disc.num_unknowns)
    return prob, labels, layout, q


@pytest.fixture(scope="module")
def socket_comm(setup):
    _, _, layout, _ = setup
    comm = SocketCommunicator(layout)
    yield comm
    comm.close()


class TestResolve:
    def test_seq_default(self, setup):
        _, _, layout, _ = setup
        assert isinstance(resolve_communicator(layout, None),
                          SeqCommunicator)
        assert isinstance(resolve_communicator(layout, "seq"),
                          SeqCommunicator)

    def test_proc_requires_attached_pool(self, setup):
        _, _, layout, _ = setup
        assert layout.pool is None
        with pytest.raises(ValueError, match="worker pool"):
            resolve_communicator(layout, "proc")

    def test_socket_requires_live_servers(self, setup):
        _, _, layout, _ = setup
        with pytest.raises(ValueError, match="rank servers"):
            resolve_communicator(layout, "socket")

    def test_unknown_executor_rejected(self, setup):
        _, _, layout, _ = setup
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_communicator(layout, "mpi")

    def test_instance_passthrough(self, setup):
        _, _, layout, _ = setup
        comm = SeqCommunicator(layout)
        assert resolve_communicator(layout, comm) is comm

    def test_attached_socket_comm_resolves(self, setup):
        _, _, layout, _ = setup
        comm = SocketCommunicator(layout)
        try:
            layout.comm = comm
            assert resolve_communicator(layout, "socket") is comm
        finally:
            layout.comm = None
            comm.close()

    def test_pool_instance_wrapped(self, setup):
        prob, _, layout, _ = setup
        from repro.parallel.procpool import ProcPool
        pool = ProcPool(layout, prob.disc, nworkers=2)
        try:
            comm = resolve_communicator(layout, pool)
            assert isinstance(comm, ProcCommunicator)
            assert comm.pool is pool
        finally:
            pool.close()
            layout.pool = None


class TestSocketUnitSuite:
    """The reduce/scatter unit contract of the acceptance criteria:
    every primitive round-trips values bitwise over real TCP."""

    def test_servers_listen_on_distinct_ports(self, socket_comm):
        ports = socket_comm.ports
        assert len(ports) == len(set(ports))
        assert all(p > 0 for p in ports)

    def test_scatter_roundtrip_bitwise(self, setup, socket_comm):
        prob, _, layout, q = setup
        ncomp = prob.disc.ncomp
        state = socket_comm.scatter(q, ncomp)
        qg = np.asarray(q).reshape(-1, ncomp)
        for rd in layout.ranks:
            local = socket_comm.local(state, rd.rank)
            assert local.shape == (rd.n_local, ncomp)
            assert np.array_equal(local[: rd.n_owned], qg[rd.owned])
            # ghosts are poison until an exchange
            if rd.ghosts.size:
                assert np.isnan(local[rd.n_owned:]).all()

    def test_scatter_preserves_dtype(self, setup, socket_comm):
        prob, _, layout, q = setup
        ncomp = prob.disc.ncomp
        q32 = np.asarray(q, dtype=np.float32)
        state = socket_comm.scatter(q32, ncomp)
        assert socket_comm.local(state, 0).dtype == np.float32

    def test_exchange_fills_ghosts_from_owners(self, setup, socket_comm):
        prob, _, layout, q = setup
        ncomp = prob.disc.ncomp
        ex = GhostExchange(layout, ncomp, executor="socket")
        state = socket_comm.scatter(q, ncomp)
        socket_comm.exchange(state, ex)
        qg = np.asarray(q).reshape(-1, ncomp)
        for rd in layout.ranks:
            local = socket_comm.local(state, rd.rank)
            assert np.array_equal(local[rd.n_owned:], qg[rd.ghosts])

    def test_exchange_accounting_matches_seq(self, setup, socket_comm):
        """Receive-direction bookkeeping equals the in-process
        exchange on the same layout."""
        prob, _, layout, q = setup
        ncomp = prob.disc.ncomp
        ex_sock = GhostExchange(layout, ncomp, executor="socket")
        socket_comm.scatter(q, ncomp)
        socket_comm.exchange(None, ex_sock)
        ex_seq = GhostExchange(layout, ncomp)
        seq = SeqCommunicator(layout)
        state = seq.scatter(q, ncomp)
        seq.exchange(state, ex_seq)
        assert ex_sock.messages == ex_seq.messages
        assert ex_sock.bytes_moved == ex_seq.bytes_moved

    def test_reduce_is_the_shared_tree(self, setup, socket_comm):
        partials = [0.1, -2.5, 3.75, 1e-9, 42.0]
        assert socket_comm.reduce(partials) == tree_reduce_sum(partials)

    def test_dot_partials_bitwise(self, setup, socket_comm):
        prob, _, layout, q = setup
        ncomp = prob.disc.ncomp
        seq = SeqCommunicator(layout)
        rng = np.random.default_rng(3)
        y = rng.standard_normal(q.size)
        assert socket_comm.dot_partials(q, y, ncomp) \
            == seq.dot_partials(q, y, ncomp)

    def test_refresh_refused_off_seq(self, setup):
        _, _, layout, _ = setup
        ex = GhostExchange(layout, 4, executor="socket")
        with pytest.raises(RuntimeError, match="in-process exchange"):
            ex.refresh([])


class TestSocketCollectives:
    """End-to-end collectives over the socket transport equal the seq
    oracle bitwise (same rank kernels, exact copies on the wire)."""

    def test_residual_bitwise(self, setup, socket_comm):
        prob, _, layout, q = setup
        r_seq = distributed_residual(prob.disc, layout, q)
        r_sock = distributed_residual(prob.disc, layout, q,
                                      executor=socket_comm)
        assert np.array_equal(r_seq, r_sock)

    def test_matvec_bitwise(self, setup, socket_comm):
        prob, _, layout, q = setup
        jac = prob.disc.shifted_jacobian(q, 10.0)
        y_seq = distributed_matvec(jac, layout, q)
        y_sock = distributed_matvec(jac, layout, q, executor=socket_comm)
        assert np.array_equal(y_seq, y_sock)

    def test_dot_bitwise(self, setup, socket_comm):
        prob, _, layout, q = setup
        ncomp = prob.disc.ncomp
        rng = np.random.default_rng(5)
        y = rng.standard_normal(q.size)
        d_seq = distributed_dot(layout, q, y, ncomp)
        d_sock = distributed_dot(layout, q, y, ncomp,
                                 executor=socket_comm)
        assert d_seq == d_sock

    def test_close_idempotent(self, setup):
        _, _, layout, _ = setup
        comm = SocketCommunicator(layout)
        comm.close()
        comm.close()


class TestGatherCache:
    def test_cache_hit_on_identity(self, setup):
        prob, _, layout, q = setup
        layout.gather_cache.clear()
        jac = prob.disc.shifted_jacobian(q, 10.0)
        rd = layout.ranks[0]
        s1 = gather_structs(jac, layout, rd)
        s2 = gather_structs(jac, layout, rd)
        assert s1 is s2

    def test_cache_hit_on_equal_pattern(self, setup):
        """A numerically-different matrix with the same sparsity reuses
        the structs (the jittered-mesh warm path)."""
        prob, _, layout, q = setup
        layout.gather_cache.clear()
        jac1 = prob.disc.shifted_jacobian(q, 10.0)
        jac2 = prob.disc.shifted_jacobian(q + 0.01, 5.0)
        # force distinct pattern objects (the discretization may share
        # them) so the equality fallback, not identity, is what hits
        jac2.indptr = jac2.indptr.copy()
        jac2.indices = jac2.indices.copy()
        assert jac1.indptr is not jac2.indptr
        rd = layout.ranks[0]
        s1 = gather_structs(jac1, layout, rd)
        s2 = gather_structs(jac2, layout, rd)
        assert s1 is s2

    def test_cached_matvec_matches_uncached(self, setup):
        prob, _, layout, q = setup
        layout.gather_cache.clear()
        jac = prob.disc.shifted_jacobian(q, 10.0)
        y1 = distributed_matvec(jac, layout, q)     # cold: fills cache
        y2 = distributed_matvec(jac, layout, q)     # warm: cache hit
        assert np.array_equal(y1, y2)

    def test_base_class_primitives_abstract(self, setup):
        _, _, layout, _ = setup
        comm = Communicator(layout)
        with pytest.raises(NotImplementedError):
            comm.scatter(np.zeros(4), 1)
