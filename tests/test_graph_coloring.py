"""Vertex and edge coloring tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import distance2_edge_coloring, graph_from_edges, greedy_coloring
from repro.graph.coloring import color_classes


class TestGreedyVertexColoring:
    def test_proper(self, small_graph):
        colors = greedy_coloring(small_graph)
        edges = small_graph.edge_list()
        assert np.all(colors[edges[:, 0]] != colors[edges[:, 1]])

    def test_color_bound(self, small_graph):
        colors = greedy_coloring(small_graph)
        assert colors.max() <= small_graph.degrees().max()

    def test_bipartite_path_two_colors(self):
        n = 10
        edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
        g = graph_from_edges(n, edges)
        assert greedy_coloring(g).max() == 1

    def test_custom_order(self, small_graph):
        order = np.arange(small_graph.num_vertices)[::-1]
        colors = greedy_coloring(small_graph, order=order)
        edges = small_graph.edge_list()
        assert np.all(colors[edges[:, 0]] != colors[edges[:, 1]])


class TestEdgeColoring:
    def test_proper_edge_coloring(self, small_mesh):
        colors = distance2_edge_coloring(small_mesh.edges,
                                         small_mesh.num_vertices)
        # No two same-colored edges share a vertex.
        for c in np.unique(colors):
            cls = small_mesh.edges[colors == c]
            endpoints = cls.ravel()
            assert np.unique(endpoints).size == endpoints.size

    def test_vizing_like_bound(self, small_mesh):
        colors = distance2_edge_coloring(small_mesh.edges,
                                         small_mesh.num_vertices)
        max_deg = small_mesh.vertex_graph().degrees().max()
        # Greedy edge coloring uses at most 2*maxdeg - 1 colors.
        assert colors.max() + 1 <= 2 * max_deg - 1

    def test_triangle_needs_three(self):
        colors = distance2_edge_coloring(np.array([[0, 1], [1, 2], [0, 2]]), 3)
        assert len(set(colors.tolist())) == 3


class TestColorClasses:
    def test_partition_of_indices(self):
        colors = np.array([1, 0, 1, 2, 0])
        classes = color_classes(colors)
        assert [c.tolist() for c in classes] == [[1, 4], [0, 2], [3]]

    def test_total_count(self, small_mesh):
        colors = distance2_edge_coloring(small_mesh.edges,
                                         small_mesh.num_vertices)
        classes = color_classes(colors)
        assert sum(len(c) for c in classes) == small_mesh.num_edges


@settings(deadline=None, max_examples=25)
@given(st.integers(3, 15), st.data())
def test_property_edge_coloring_always_proper(n, data):
    pairs = data.draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
        .filter(lambda t: t[0] != t[1]),
        min_size=1, max_size=2 * n, unique=True))
    edges = np.array([(min(a, b), max(a, b)) for a, b in pairs])
    edges = np.unique(edges, axis=0)
    colors = distance2_edge_coloring(edges, n)
    incident: dict[tuple[int, int], int] = {}
    for e, c in enumerate(colors.tolist()):
        for v in edges[e]:
            key = (int(v), c)
            assert key not in incident, "two same-color edges share a vertex"
            incident[key] = e
