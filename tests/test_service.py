"""SolverService: warm caches, admission control, crash quarantine.

The service's correctness contract is inherited — every solve runs
the oracle-disciplined NKSSolver — so these tests focus on the
service semantics: warm-seeded solves are bitwise-identical to cold
ones, cache namespaces hit per structure, the bounded queue rejects,
deadlines expire requests, batching groups compatible requests, and
a crashed worker quarantines one request without killing the service.
"""

import time

import numpy as np
import pytest

from repro.core.config import PreconditionerConfig, SolverConfig
from repro.euler import wing_problem
from repro.parallel.procpool import ProcPoolError
from repro.service import (ServiceCache, SolveRequest, SolverService,
                           config_key, mesh_hash, pattern_hash,
                           topology_hash)
from repro.service.warm import harvest_context, seed_solver


def small_cfg(**kw):
    kw.setdefault("max_steps", 4)
    kw.setdefault("executor", "seq")
    kw.setdefault("precond", PreconditionerConfig(nparts=4))
    return SolverConfig(**kw)


def make_prob(jitter=0.0, size=(7, 5, 4)):
    prob = wing_problem(*size)
    if jitter:
        rng = np.random.default_rng(42)
        prob.mesh.coords[:] += jitter * rng.standard_normal(
            prob.mesh.coords.shape)
    return prob


class TestHashing:
    def test_mesh_hash_sees_coords(self):
        a, b = make_prob(), make_prob(jitter=1e-6)
        assert topology_hash(a.mesh) == topology_hash(b.mesh)
        assert mesh_hash(a.mesh) != mesh_hash(b.mesh)

    def test_topology_hash_sees_edges(self):
        a, b = make_prob(), make_prob(size=(8, 5, 4))
        assert topology_hash(a.mesh) != topology_hash(b.mesh)

    def test_config_key_stable_and_discriminating(self):
        assert config_key(small_cfg()) == config_key(small_cfg())
        assert config_key(small_cfg()) != config_key(
            small_cfg(max_steps=5))

    def test_pattern_hash(self):
        prob = make_prob()
        q = prob.initial.flat()
        jac = prob.disc.shifted_jacobian(q, 10.0)
        h = pattern_hash(jac.indptr, jac.indices)
        assert h == pattern_hash(jac.indptr.copy(), jac.indices.copy())


class TestServiceCache:
    def test_hit_miss_byte_accounting(self):
        cache = ServiceCache()
        assert cache.get("partition", "k") is None
        cache.put("partition", "k", np.arange(8), nbytes=64)
        assert cache.get("partition", "k") is not None
        st = cache.stats()["partition"]
        assert (st.hits, st.misses, st.puts) == (1, 1, 1)
        assert st.bytes_stored == 64 and st.bytes_served == 64
        assert st.hit_ratio == 0.5

    def test_lru_eviction(self):
        cache = ServiceCache(max_entries=2)
        for i in range(3):
            cache.put("gather", f"k{i}", i, nbytes=10)
        st = cache.stats()["gather"]
        assert st.evictions == 1 and st.bytes_stored == 20
        assert cache.get("gather", "k0") is None       # evicted
        assert cache.get("gather", "k2") == 2

    def test_unknown_namespace_rejected(self):
        with pytest.raises(KeyError, match="namespace"):
            ServiceCache().get("jacobians", "k")


class TestWarmSeeding:
    def test_cold_then_warm_bitwise_identical(self):
        cache = ServiceCache()
        cfg = small_cfg()
        p1 = make_prob()
        ctx1 = seed_solver(cache, p1.disc, cfg)
        assert not any(ctx1.seeded.values())
        rep1 = ctx1.solver.solve(p1.initial.flat())
        harvest_context(cache, ctx1)

        p2 = make_prob()
        ctx2 = seed_solver(cache, p2.disc, cfg)
        assert all(ctx2.seeded.values())
        rep2 = ctx2.solver.solve(p2.initial.flat())
        assert np.array_equal(rep1.final_state, rep2.final_state)

    def test_jittered_mesh_hits_structural_namespaces(self):
        """Same topology, perturbed coordinates: partitions, gather
        structs, and the symbolic preconditioner all reuse."""
        cache = ServiceCache()
        cfg = small_cfg()
        p1 = make_prob()
        ctx1 = seed_solver(cache, p1.disc, cfg)
        ctx1.solver.solve(p1.initial.flat())
        harvest_context(cache, ctx1)

        p2 = make_prob(jitter=1e-8)
        ctx2 = seed_solver(cache, p2.disc, cfg)
        assert all(ctx2.seeded.values())
        assert ctx2.mesh_key != ctx1.mesh_key
        rep2 = ctx2.solver.solve(p2.initial.flat())
        assert rep2.num_steps > 0

    def test_incompatible_config_misses(self):
        cache = ServiceCache()
        p1 = make_prob()
        ctx1 = seed_solver(cache, p1.disc, small_cfg())
        ctx1.solver.solve(p1.initial.flat())
        harvest_context(cache, ctx1)
        ctx2 = seed_solver(
            cache, make_prob().disc,
            small_cfg(precond=PreconditionerConfig(nparts=3)))
        assert not any(ctx2.seeded.values())


class TestServiceLifecycle:
    def test_repeat_mesh_warm_hits_and_bitwise(self):
        with SolverService(workers=1) as svc:
            cfg = small_cfg()
            p = make_prob()
            t1 = svc.submit(SolveRequest(p.disc, p.initial.flat(), cfg))
            rep1 = t1.result(timeout=300)
            assert t1.status == "completed"
            assert not any(t1.seeded.values())
            p2 = make_prob()
            t2 = svc.submit(SolveRequest(p2.disc, p2.initial.flat(), cfg))
            rep2 = t2.result(timeout=300)
            assert all(t2.seeded.values())
            assert np.array_equal(rep1.final_state, rep2.final_state)
            for ns, st in svc.cache.stats().items():
                assert st.hits > 0, f"no warm hits in {ns}"

    def test_request_trace_has_service_spans(self):
        with SolverService(workers=1) as svc:
            p = make_prob()
            t = svc.submit(SolveRequest(p.disc, p.initial.flat(),
                                        small_cfg()))
            t.result(timeout=300)
            phases = set(t.trace["phases"])
            assert {"service_queue", "service_seed", "service_solve",
                    "service_harvest"} <= phases
            assert "krylov" in phases       # the solver's own spans

    def test_admission_rejects_past_bound(self):
        svc = SolverService(workers=1, max_queue=1)
        # jam the single dispatcher by holding the request's key lock:
        # the first submit dispatches and blocks, the second fills the
        # queue, the third must be rejected at admission
        p = make_prob()
        req = SolveRequest(p.disc, p.initial.flat(), small_cfg())
        klock = svc._key_lock(svc.compat_key(req))
        klock.acquire()
        try:
            t1 = svc.submit(req)           # dispatched, blocks on lock
            time.sleep(0.1)
            t2 = svc.submit(req)           # queued (1/1)
            t3 = svc.submit(req)           # rejected
            assert t3.status == "rejected"
            assert t3.done and t3.report is None
        finally:
            klock.release()
        assert t1.result(timeout=300) is not None
        assert t2.result(timeout=300) is not None
        assert svc.stats.rejected == 1
        svc.close()

    def test_queued_deadline_expires_without_running(self):
        svc = SolverService(workers=1)
        p = make_prob()
        req = SolveRequest(p.disc, p.initial.flat(), small_cfg())
        key = svc.compat_key(req)
        klock = svc._key_lock(key)
        klock.acquire()
        try:
            t1 = svc.submit(req)               # holds the dispatcher
            time.sleep(0.05)
            late = SolveRequest(p.disc, p.initial.flat(), small_cfg(),
                                deadline_s=0.01)
            t2 = svc.submit(late)
            time.sleep(0.1)                    # let the deadline pass
        finally:
            klock.release()
        t1.result(timeout=300)
        t2.wait(timeout=300)
        assert t2.status == "timeout"
        assert t2.report is None
        svc.close()

    def test_batching_groups_compatible_requests(self):
        svc = SolverService(workers=1)
        cfg = small_cfg()
        p = make_prob()
        req = SolveRequest(p.disc, p.initial.flat(), cfg)
        key = svc.compat_key(req)
        klock = svc._key_lock(key)
        klock.acquire()
        try:
            head = svc.submit(req)
            time.sleep(0.1)                # dispatcher blocks on klock
            followers = [svc.submit(SolveRequest(
                make_prob().disc, p.initial.flat(), cfg))
                for _ in range(2)]
        finally:
            klock.release()
        for t in [head, *followers]:
            assert t.result(timeout=300) is not None
        # head ran alone (already dispatched); the two queued
        # same-key requests were drained as one batch
        assert svc.stats.batches >= 1
        assert svc.stats.batched_requests >= 1
        assert any(t.batched for t in followers)
        svc.close()

    def test_close_unblocks_workers(self):
        svc = SolverService(workers=2)
        svc.close()
        for t in svc._threads:
            assert not t.is_alive()


class TestProcServiceAndQuarantine:
    @pytest.fixture()
    def proc_cfg(self):
        return small_cfg(executor="proc", nworkers=2)

    def test_proc_requests_reuse_pool_and_match_seq(self, proc_cfg):
        with SolverService(workers=1) as svc:
            p = make_prob()
            t1 = svc.submit(SolveRequest(p.disc, p.initial.flat(),
                                         proc_cfg, tag="cold"))
            rep1 = t1.result(timeout=600)
            p2 = make_prob()
            t2 = svc.submit(SolveRequest(p2.disc, p2.initial.flat(),
                                         proc_cfg, tag="warm"))
            rep2 = t2.result(timeout=600)
            assert svc.stats.pools_created == 1    # second reused it
            assert np.array_equal(rep1.final_state, rep2.final_state)
        # seq oracle at the service level
        with SolverService(workers=1) as svc:
            p3 = make_prob()
            t3 = svc.submit(SolveRequest(p3.disc, p3.initial.flat(),
                                         small_cfg()))
            rep3 = t3.result(timeout=600)
        assert np.array_equal(rep1.final_state, rep3.final_state)

    def test_crashed_worker_quarantines_request_not_service(
            self, proc_cfg):
        with SolverService(workers=1) as svc:
            p = make_prob()
            t1 = svc.submit(SolveRequest(p.disc, p.initial.flat(),
                                         proc_cfg))
            t1.result(timeout=600)
            # murder a pool worker between requests
            [layout] = svc._warm_pools.values()
            victim = layout.pool._procs[0]
            victim.terminate()
            victim.join()
            t2 = svc.submit(SolveRequest(make_prob().disc,
                                         p.initial.flat(), proc_cfg))
            with pytest.raises(ProcPoolError):
                t2.result(timeout=600)
            assert t2.status == "failed"
            assert svc.stats.failed == 1
            assert svc.stats.pools_discarded >= 1
            # the service recovers: a fresh pool serves the next request
            t3 = svc.submit(SolveRequest(make_prob().disc,
                                         p.initial.flat(), proc_cfg))
            assert t3.result(timeout=600) is not None
            assert t3.status == "completed"
