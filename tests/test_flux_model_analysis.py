"""Instruction-scheduling flux model and solve-history analysis."""

import numpy as np
import pytest

from repro.core import SolverConfig
from repro.core.analysis import (convergence_rate, steps_to_reduction,
                                 work_precision)
from repro.euler import wing_problem
from repro.perfmodel import ASCI_RED_PPRO, ORIGIN2000_R10K
from repro.perfmodel.flux_model import (KernelOpMix, flux_op_mix,
                                        instruction_bound_time,
                                        phase_bottleneck, spmv_op_mix)
from repro.solvers.ptc import PTCConfig


class TestFluxModel:
    def test_flux_intensity_far_above_spmv(self):
        """The paper's dichotomy: flux escapes the memory wall, SpMV
        does not."""
        flux = flux_op_mix(num_edges=70_000, ncomp=4, num_vertices=10_000)
        nnz = (10_000 + 2 * 70_000) * 16
        spmv = spmv_op_mix(nnz_scalar=nnz, nrows=40_000, block_size=4)
        assert flux.intensity() > 4 * spmv.intensity()
        # Flux sits above the period machines' ridge (~1.7-2 flops/B);
        # SpMV far below it.
        assert flux.intensity() > 1.0
        assert spmv.intensity() < 0.5

    def test_second_order_costs_more(self):
        f1 = flux_op_mix(1000, 4, second_order=False)
        f2 = flux_op_mix(1000, 4, second_order=True)
        assert f2.flops > f1.flops
        assert f2.mem_ops > f1.mem_ops

    def test_issue_bound_monotone_in_ops(self):
        m1 = KernelOpMix(1e6, 1e5, 1e5)
        m2 = KernelOpMix(2e6, 1e5, 1e5)
        t1 = instruction_bound_time(m1, ASCI_RED_PPRO)
        t2 = instruction_bound_time(m2, ASCI_RED_PPRO)
        assert t2 > t1

    def test_phase_classification_matches_paper(self):
        """On the period machines, flux classifies instruction-bound
        and SpMV memory-bandwidth-bound (with realistic traffic)."""
        ne, nv, nc = 50_000, 8_000, 4
        flux = flux_op_mix(ne, nc, num_vertices=nv)
        nnz = (nv + 2 * ne) * nc * nc
        spmv = spmv_op_mix(nnz, nv * nc, block_size=nc)
        # On the R10000 the split is clean: flux issue-bound, SpMV
        # bandwidth-bound.  (FUN3D's characteristic fluxes do ~4x the
        # arithmetic of our Rusanov kernel, so the real code is even
        # deeper into the issue-bound regime.)
        assert phase_bottleneck(flux, ORIGIN2000_R10K,
                                flux.compulsory_bytes) \
            == "instruction-issue"
        for machine in (ASCI_RED_PPRO, ORIGIN2000_R10K):
            assert phase_bottleneck(spmv, machine,
                                    spmv.compulsory_bytes) \
                == "memory-bandwidth"
            # SpMV oversubscribes the memory system several-fold more
            # than flux does on every machine.
            ti_f = instruction_bound_time(flux, machine)
            ti_s = instruction_bound_time(spmv, machine)
            r_flux = flux.compulsory_bytes / machine.stream_bw / ti_f
            r_spmv = spmv.compulsory_bytes / machine.stream_bw / ti_s
            assert r_spmv > 3 * r_flux

    def test_issue_width_floor(self):
        """With tiny flop counts the total-issue bound dominates."""
        mix = KernelOpMix(flops=10, mem_ops=10, other_ops=1_000_000)
        t = instruction_bound_time(mix, ASCI_RED_PPRO, issue_width=2.0)
        assert t == pytest.approx(1_000_020 / 2.0
                                  * ASCI_RED_PPRO.cycle_time, rel=1e-6)


class TestAnalysis:
    def test_convergence_rate_geometric(self):
        r = 10.0 ** -np.arange(8)          # exact 0.1x per step
        assert convergence_rate(r, tail=4) == pytest.approx(0.1)

    def test_convergence_rate_short_history(self):
        assert np.isnan(convergence_rate(np.array([1.0])))

    def test_steps_to_reduction(self):
        r = np.array([1.0, 0.5, 0.05, 0.005])
        assert steps_to_reduction(r, 0.1) == 2
        assert steps_to_reduction(r, 1e-9) is None

    def test_work_precision_monotone(self):
        prob = wing_problem(8, 6, 4)
        cfg = SolverConfig(matrix_free=True, jacobian_lag=2, max_steps=40,
                           ptc=PTCConfig(cfl0=10.0))
        pts = work_precision(prob, cfg, reductions=(1e-2, 1e-4, 1e-6))
        # Sorted loosest -> tightest; costs must be nondecreasing.
        assert [p.reduction for p in pts] == [1e-2, 1e-4, 1e-6]
        reached = [p for p in pts if p.steps is not None]
        assert len(reached) == 3
        steps = [p.steps for p in reached]
        assert steps == sorted(steps)
        its = [p.linear_iterations for p in reached]
        assert its == sorted(its)

    def test_superlinear_endgame(self):
        """ΨNKS's late-phase rate is much faster than its early rate."""
        prob = wing_problem(8, 6, 4)
        cfg = SolverConfig(matrix_free=True, jacobian_lag=2, max_steps=40,
                           target_reduction=1e-9, ptc=PTCConfig(cfl0=5.0))
        from repro.core import NKSSolver
        rep = NKSSolver(prob.disc, cfg).solve(prob.initial.flat())
        r = rep.residual_history
        early = r[2] / r[0]
        late = r[-1] / r[-3]
        assert late < early
