"""Unit tests for the smaller support modules: reporting, flow state,
network model details, hybrid model internals, driver records."""

import numpy as np
import pytest

from repro.core.driver import SolveReport, StepRecord
from repro.core.reporting import (format_markdown_table, format_series,
                                  format_table)
from repro.euler.state import (FlowState, compressible_freestream,
                               incompressible_freestream)
from repro.parallel.netmodel import NetworkModel
from repro.parallel.rankwork import RankWork


class TestReporting:
    def test_format_table_alignment(self):
        t = format_table(["a", "bb"], [[1, 2.5], [30, 0.125]], title="T")
        lines = t.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        t = format_table(["x"], [])
        assert "x" in t

    def test_float_formatting(self):
        t = format_table(["v"], [[0.0], [1e-7], [123456.789], [3.5]])
        assert "0" in t and "1e-07" in t

    def test_markdown_table(self):
        md = format_markdown_table(["a", "b"], [[1, 2]])
        lines = md.splitlines()
        assert lines[0].startswith("|") and "---" in lines[1]
        assert "| 1 | 2 |" == lines[2]

    def test_series(self):
        s = format_series("curve", [1, 2], [0.5, 0.25], "p", "t")
        assert "curve" in s and "p" in s and "t" in s


class TestFlowState:
    def test_interlaced_flat_roundtrip(self):
        fs = incompressible_freestream(5, alpha_deg=0.0)
        back = FlowState.from_flat(fs.flat(), fs.components)
        assert np.array_equal(back.q, fs.q)

    def test_component_access(self):
        fs = incompressible_freestream(4, speed=2.0, alpha_deg=0.0)
        assert np.allclose(fs.component("u"), 2.0)
        assert np.allclose(fs.component("p"), 0.0)

    def test_noninterlaced_is_field_major(self):
        fs = incompressible_freestream(3, alpha_deg=5.0)
        fm = fs.noninterlaced()
        assert fm.shape == (4, 3)
        assert np.array_equal(fm[1], fs.component("u"))

    def test_alpha_rotates_velocity(self):
        fs = incompressible_freestream(1, alpha_deg=90.0)
        assert fs.q[0, 1] == pytest.approx(0.0, abs=1e-12)
        assert fs.q[0, 3] == pytest.approx(1.0)

    def test_speed_magnitude(self):
        fs = incompressible_freestream(1, speed=3.0, alpha_deg=17.0,
                                       beta_deg=9.0)
        assert np.linalg.norm(fs.q[0, 1:4]) == pytest.approx(3.0)

    def test_compressible_mach(self):
        fs = compressible_freestream(1, mach=0.5, alpha_deg=0.0)
        rho = fs.q[0, 0]
        v = fs.q[0, 1:4] / rho
        p = 0.4 * (fs.q[0, 4] - 0.5 * rho * v @ v)
        c = np.sqrt(1.4 * p / rho)
        assert np.linalg.norm(v) / c == pytest.approx(0.5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FlowState(q=np.zeros((3, 5)), components=("a", "b"))

    def test_copy_independent(self):
        fs = incompressible_freestream(3)
        c = fs.copy()
        c.q[:] = 0
        assert not np.allclose(fs.q, 0)


class TestNetworkModelDetails:
    def test_pack_bandwidth_caps_payload(self):
        slow_pack = NetworkModel(alpha=0, beta=1e9, pack_bw=1e6)
        fast_pack = NetworkModel(alpha=0, beta=1e9, pack_bw=1e9)
        assert slow_pack.scatter_time(1, 1e6) > fast_pack.scatter_time(1, 1e6)

    def test_latency_dominates_small_messages(self):
        net = NetworkModel(alpha=1e-4, beta=1e9, pack_bw=1e9)
        t = net.scatter_time(10, 100)
        assert t == pytest.approx(1e-3, rel=1e-3)

    def test_effective_bandwidth(self):
        net = NetworkModel(alpha=0, beta=1e9, pack_bw=1e9)
        assert net.effective_bandwidth(1e6, 0.5) == pytest.approx(2e6)

    def test_allreduce_single_rank_free(self):
        net = NetworkModel(alpha=1e-5, beta=1e8, pack_bw=1e7)
        assert net.allreduce_time(1) == 0.0


class TestRankWorkDetails:
    def _work(self, **kw):
        defaults = dict(rank=0, owned_vertices=100, local_edges=700,
                        interior_edges=600, halo_edges=100, ncomp=4)
        defaults.update(kw)
        return RankWork(**defaults)

    def test_block_nnz_formula(self):
        w = self._work()
        assert w.local_block_nnz == 100 + 2 * 600 + 100
        assert w.jacobian_scalar_nnz == w.local_block_nnz * 16

    def test_flux_dominated_by_edges(self):
        w1 = self._work(local_edges=700)
        w2 = self._work(local_edges=1400)
        assert w2.flux_flops == pytest.approx(2 * w1.flux_flops, rel=0.01)

    def test_pcsetup_scales_with_fill_squared(self):
        w1 = self._work(fill_ratio=1.0)
        w2 = self._work(fill_ratio=2.0)
        assert w2.pcsetup_flops == pytest.approx(4 * w1.pcsetup_flops,
                                                 rel=0.01)


class TestSolveReport:
    def _report(self):
        rep = SolveReport(converged=True, fnorm0=1.0)
        rep.steps = [
            StepRecord(step=1, fnorm=1.0, cfl=10, linear_iterations=5,
                       gmres_converged=True, time_flux=0.1,
                       time_krylov=0.3),
            StepRecord(step=2, fnorm=0.1, cfl=100, linear_iterations=7,
                       gmres_converged=True, time_flux=0.1,
                       time_pcsetup=0.2, time_krylov=0.4),
        ]
        return rep

    def test_totals(self):
        rep = self._report()
        assert rep.total_linear_iterations == 12
        assert rep.num_steps == 2
        assert rep.final_reduction == pytest.approx(0.1)

    def test_histories(self):
        rep = self._report()
        assert rep.residual_history.tolist() == [1.0, 0.1]
        assert rep.cfl_history.tolist() == [10, 100]

    def test_phase_times(self):
        rep = self._report()
        t = rep.phase_times()
        assert t["flux"] == pytest.approx(0.2)
        assert t["pc_setup"] == pytest.approx(0.2)
        assert rep.time_per_step == pytest.approx(sum(t.values()) / 2)

    def test_empty_report(self):
        rep = SolveReport(converged=False)
        assert rep.final_reduction == 1.0
        assert rep.time_per_step == 0.0


class TestDriverMonitor:
    def test_monitor_called_each_step(self):
        from repro.core import NKSSolver, SolverConfig
        from repro.euler import wing_problem
        prob = wing_problem(5, 4, 4)
        seen = []
        cfg = SolverConfig(matrix_free=True, max_steps=4,
                           target_reduction=1e-12)
        NKSSolver(prob.disc, cfg).solve(
            prob.initial.flat(),
            monitor=lambda rec, q: seen.append((rec.step, q.shape)))
        assert [s for s, _ in seen] == [1, 2, 3, 4]
        assert all(shape == (prob.num_unknowns,) for _, shape in seen)

    def test_monitor_early_stop(self):
        from repro.core import NKSSolver, SolverConfig
        from repro.euler import wing_problem
        prob = wing_problem(5, 4, 4)

        def stop_after_two(rec, q):
            if rec.step >= 2:
                raise StopIteration

        cfg = SolverConfig(matrix_free=True, max_steps=10,
                           target_reduction=1e-12)
        rep = NKSSolver(prob.disc, cfg).solve(prob.initial.flat(),
                                              monitor=stop_after_two)
        assert rep.num_steps == 2
        assert not rep.converged
        assert rep.final_state is not None


class TestBoundaryPermute:
    def test_bc_permuted_relabels_vertices(self):
        import numpy as np
        from repro.euler.boundary import BoundaryCondition
        bc = BoundaryCondition(vertices=np.array([0, 2]),
                               normals=np.zeros((2, 3)),
                               kinds=np.array([0, 1]))
        inv = np.array([5, 6, 7])   # old -> new
        bc2 = bc.permuted(inv)
        assert bc2.vertices.tolist() == [5, 7]
        assert np.array_equal(bc2.kinds, bc.kinds)
