"""Unit tests for BFS, components, peripheral nodes, overlap expansion."""

import numpy as np

from repro.graph import (bfs_levels, bfs_order, connected_components,
                         component_sizes, graph_from_edges,
                         pseudo_peripheral_node)
from repro.graph.traversal import expand_overlap


def _path_graph(n):
    edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    return graph_from_edges(n, edges)


def _two_triangles():
    return graph_from_edges(6, [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]])


class TestBFS:
    def test_levels_path(self):
        g = _path_graph(5)
        lev = bfs_levels(g, [0])
        assert lev.tolist() == [0, 1, 2, 3, 4]

    def test_levels_multi_source(self):
        g = _path_graph(5)
        lev = bfs_levels(g, [0, 4])
        assert lev.tolist() == [0, 1, 2, 1, 0]

    def test_levels_unreachable(self):
        g = _two_triangles()
        lev = bfs_levels(g, [0])
        assert np.all(lev[3:] == -1)
        assert np.all(lev[:3] >= 0)

    def test_levels_match_networkx(self, small_graph):
        import networkx as nx
        nxg = nx.Graph(list(map(tuple, small_graph.edge_list())))
        ref = nx.single_source_shortest_path_length(nxg, 0)
        lev = bfs_levels(small_graph, [0])
        for v, d in ref.items():
            assert lev[v] == d

    def test_bfs_order_visits_component_once(self, small_graph):
        order = bfs_order(small_graph, 0)
        assert order.size == small_graph.num_vertices  # connected mesh
        assert np.unique(order).size == order.size

    def test_bfs_order_degree_tie_break(self):
        # Star with extra chain: neighbours of 0 enqueued by degree.
        g = graph_from_edges(5, [[0, 1], [0, 2], [0, 3], [3, 4]])
        order = bfs_order(g, 0)
        # deg(1)=deg(2)=1 < deg(3)=2, so 3 comes after 1 and 2.
        assert order.tolist()[:1] == [0]
        assert order.tolist().index(3) > order.tolist().index(1)


class TestComponents:
    def test_single_component(self, small_graph):
        comp = connected_components(small_graph)
        assert comp.max() == 0

    def test_two_components(self):
        comp = connected_components(_two_triangles())
        assert comp.max() == 1
        assert set(comp[:3]) == {0}
        assert set(comp[3:]) == {1}

    def test_component_sizes(self):
        sizes = component_sizes(_two_triangles())
        assert sizes.tolist() == [3, 3]

    def test_isolated_vertices_are_components(self):
        g = graph_from_edges(4, [[0, 1]])
        comp = connected_components(g)
        assert len(set(comp.tolist())) == 3


class TestPeripheral:
    def test_path_endpoint(self):
        g = _path_graph(9)
        v = pseudo_peripheral_node(g, start=4)
        assert v in (0, 8)

    def test_idempotent_on_periphery(self):
        g = _path_graph(9)
        assert pseudo_peripheral_node(g, start=0) in (0, 8)


class TestOverlap:
    def test_zero_overlap_identity(self, small_graph):
        core = np.array([0, 5, 9])
        assert np.array_equal(expand_overlap(small_graph, core, 0), core)

    def test_one_ring(self):
        g = _path_graph(7)
        out = expand_overlap(g, np.array([3]), 1)
        assert out.tolist() == [2, 3, 4]

    def test_rings_nest(self, small_graph):
        core = np.array([0])
        prev = core
        for delta in range(1, 4):
            cur = expand_overlap(small_graph, core, delta)
            assert np.all(np.isin(prev, cur))
            assert cur.size >= prev.size
            prev = cur

    def test_overlap_matches_bfs(self, small_graph):
        core = np.array([2, 17])
        out = expand_overlap(small_graph, core, 2)
        lev = bfs_levels(small_graph, core)
        expected = np.where((lev >= 0) & (lev <= 2))[0]
        assert np.array_equal(out, expected)
