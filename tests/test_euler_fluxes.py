"""Pointwise flux functions: Jacobian exactness, invariances, wavespeeds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.euler.fluxes import (compressible_flux, compressible_flux_jacobian,
                                compressible_wavespeed, incompressible_flux,
                                incompressible_flux_jacobian,
                                incompressible_wavespeed, rusanov_flux,
                                rusanov_flux_jacobians)


def fd_jacobian(flux, q, s, eps=1e-7, **kw):
    m, nc = q.shape
    j = np.zeros((m, nc, nc))
    for c in range(nc):
        qp = q.copy()
        qp[:, c] += eps
        qm = q.copy()
        qm[:, c] -= eps
        j[:, :, c] = (flux(qp, s, **kw) - flux(qm, s, **kw)) / (2 * eps)
    return j


@pytest.fixture(scope="module")
def states(rng):
    q_inc = rng.random((20, 4)) - np.array([0.5, 0, 0, 0])
    q_cmp = np.zeros((20, 5))
    q_cmp[:, 0] = 1 + 0.3 * rng.random(20)
    q_cmp[:, 1:4] = 0.4 * (rng.random((20, 3)) - 0.5)
    q_cmp[:, 4] = 2.5 + rng.random(20)
    s = rng.random((20, 3)) - 0.5
    return q_inc, q_cmp, s


class TestIncompressible:
    def test_jacobian_matches_fd(self, states):
        q, _, s = states
        ja = incompressible_flux_jacobian(q, s, beta=6.0)
        jf = fd_jacobian(incompressible_flux, q, s, beta=6.0)
        assert np.allclose(ja, jf, atol=1e-6)

    def test_flux_linear_in_area(self, states):
        q, _, s = states
        f1 = incompressible_flux(q, s)
        f2 = incompressible_flux(q, 3.0 * s)
        assert np.allclose(f2, 3.0 * f1)

    def test_zero_velocity_flux(self):
        q = np.array([[2.0, 0, 0, 0]])
        s = np.array([[1.0, 0, 0]])
        f = incompressible_flux(q, s)
        assert np.allclose(f, [[0, 2.0, 0, 0]])  # only pressure

    def test_wavespeed_dominates_eigenvalues(self, states):
        q, _, s = states
        j = incompressible_flux_jacobian(q, s, beta=6.0)
        lam = incompressible_wavespeed(q, s, beta=6.0)
        for i in range(q.shape[0]):
            assert np.abs(np.linalg.eigvals(j[i])).max() <= lam[i] + 1e-10

    def test_wavespeed_scales_with_beta(self, states):
        q, _, s = states
        l1 = incompressible_wavespeed(q, s, beta=1.0)
        l2 = incompressible_wavespeed(q, s, beta=100.0)
        assert np.all(l2 > l1)


class TestCompressible:
    def test_jacobian_matches_fd(self, states):
        _, q, s = states
        ja = compressible_flux_jacobian(q, s)
        jf = fd_jacobian(compressible_flux, q, s)
        assert np.allclose(ja, jf, atol=1e-6)

    def test_homogeneity(self, states):
        """Euler flux is homogeneous of degree 1: F(q) = A(q) q."""
        _, q, s = states
        a = compressible_flux_jacobian(q, s)
        f = compressible_flux(q, s)
        assert np.allclose(np.einsum("mij,mj->mi", a, q), f, atol=1e-10)

    def test_wavespeed_dominates_eigenvalues(self, states):
        _, q, s = states
        j = compressible_flux_jacobian(q, s)
        lam = compressible_wavespeed(q, s)
        for i in range(q.shape[0]):
            assert np.abs(np.linalg.eigvals(j[i])).max() <= lam[i] + 1e-10

    def test_mass_flux(self, states):
        _, q, s = states
        f = compressible_flux(q, s)
        vel = q[:, 1:4] / q[:, 0:1]
        un = np.einsum("ij,ij->i", vel, s)
        assert np.allclose(f[:, 0], q[:, 0] * un)


class TestRusanov:
    def test_consistency(self, states):
        """F(q, q) = F(q): the numerical flux is consistent."""
        q, _, s = states
        f = rusanov_flux(q, q, s, incompressible_flux,
                         incompressible_wavespeed, beta=4.0)
        assert np.allclose(f, incompressible_flux(q, s, beta=4.0))

    def test_conservation_antisymmetry(self, states):
        """F(ql, qr; s) = -F(qr, ql; -s): flux leaving one cell enters
        the other."""
        q, _, s = states
        ql, qr = q[:10], q[10:]
        f1 = rusanov_flux(ql, qr, s[:10], incompressible_flux,
                          incompressible_wavespeed, beta=4.0)
        f2 = rusanov_flux(qr, ql, -s[:10], incompressible_flux,
                          incompressible_wavespeed, beta=4.0)
        assert np.allclose(f1, -f2)

    def test_upwind_dissipation_sign(self, states):
        q, _, s = states
        ql, qr = q[:10], q[10:]
        central = 0.5 * (incompressible_flux(ql, s[:10], beta=4.0)
                         + incompressible_flux(qr, s[:10], beta=4.0))
        f = rusanov_flux(ql, qr, s[:10], incompressible_flux,
                         incompressible_wavespeed, beta=4.0)
        diss = central - f
        lam = np.maximum(incompressible_wavespeed(ql, s[:10], beta=4.0),
                         incompressible_wavespeed(qr, s[:10], beta=4.0))
        assert np.allclose(diss, 0.5 * lam[:, None] * (qr - ql))

    def test_jacobians_match_fd_when_lambda_smooth(self):
        """Away from the max() switch, the frozen-lambda Jacobian is the
        true derivative up to the dlambda term (small for small dq)."""
        rng = np.random.default_rng(0)
        ql = rng.random((5, 4))
        qr = ql + 1e-5 * rng.random((5, 4))
        s = rng.random((5, 3)) - 0.5
        jl, jr = rusanov_flux_jacobians(ql, qr, s,
                                        incompressible_flux_jacobian,
                                        incompressible_wavespeed, beta=4.0)
        eps = 1e-7
        for c in range(4):
            qp = ql.copy()
            qp[:, c] += eps
            fd = (rusanov_flux(qp, qr, s, incompressible_flux,
                               incompressible_wavespeed, beta=4.0)
                  - rusanov_flux(ql, qr, s, incompressible_flux,
                                 incompressible_wavespeed, beta=4.0)) / eps
            assert np.allclose(jl[:, :, c], fd, atol=1e-3)


@settings(deadline=None, max_examples=25)
@given(st.floats(0.5, 2.0), st.floats(-0.5, 0.5), st.floats(-0.5, 0.5),
       st.floats(-0.5, 0.5), st.floats(1.5, 4.0))
def test_property_compressible_wavespeed_positive(rho, u, v, w, e_extra):
    q = np.array([[rho, rho * u, rho * v, rho * w,
                   e_extra + 0.5 * rho * (u*u + v*v + w*w)]])
    s = np.array([[0.3, -0.4, 0.2]])
    assert compressible_wavespeed(q, s)[0] > 0
