"""Additive Schwarz / block Jacobi preconditioners."""

import numpy as np
import pytest

from repro.partition import kway_partition
from repro.precond import ASMConfig, AdditiveSchwarz, BlockJacobi
from repro.solvers import gmres
from repro.sparse import (CSRMatrix, assemble_bsr, block_structure_from_edges,
                          )


@pytest.fixture(scope="module")
def mesh_matrix(small_mesh, rng):
    """A well-conditioned block matrix on the small mesh's pattern."""
    bs = 2
    st = block_structure_from_edges(small_mesh.num_vertices,
                                    small_mesh.edges)
    n, ne = small_mesh.num_vertices, small_mesh.num_edges
    deg = np.asarray(small_mesh.vertex_graph().degrees(), dtype=float)
    diag = (np.eye(bs)[None] * (deg[:, None, None] + 2)
            + 0.1 * rng.standard_normal((n, bs, bs)))
    off = -np.eye(bs)[None] * 0.5 + 0.05 * rng.standard_normal((ne, bs, bs))
    off2 = -np.eye(bs)[None] * 0.5 + 0.05 * rng.standard_normal((ne, bs, bs))
    return small_mesh, assemble_bsr(st, bs, diag, off, off2)


class TestSetupStructure:
    def test_single_domain_is_plain_ilu(self, mesh_matrix, rng):
        mesh, a = mesh_matrix
        pc = BlockJacobi.single_domain(mesh.num_vertices, fill_level=0)
        pc.setup(a)
        assert pc.num_subdomains == 1
        r = rng.random(a.shape[0])
        from repro.sparse import ilu_bsr
        ref = ilu_bsr(a, 0).solve(r)
        assert np.allclose(pc.solve(r), ref)

    def test_subdomain_counts(self, mesh_matrix):
        mesh, a = mesh_matrix
        labels = kway_partition(mesh.vertex_graph(), 4, seed=0)
        pc = BlockJacobi(labels, fill_level=0).setup(a)
        assert pc.num_subdomains == 4
        owned = sum(sd.num_owned for sd in pc.subdomains)
        assert owned == mesh.num_vertices

    def test_zero_overlap_no_ghosts(self, mesh_matrix):
        mesh, a = mesh_matrix
        labels = kway_partition(mesh.vertex_graph(), 4, seed=0)
        pc = BlockJacobi(labels).setup(a)
        assert pc.ghost_rows_total() == 0
        assert pc.overlap_fraction() == 0.0

    def test_overlap_adds_ghosts(self, mesh_matrix):
        mesh, a = mesh_matrix
        labels = kway_partition(mesh.vertex_graph(), 4, seed=0)
        for delta in (1, 2):
            pc = AdditiveSchwarz(labels, ASMConfig(overlap=delta)).setup(a)
            assert pc.ghost_rows_total() > 0
        g1 = AdditiveSchwarz(labels, ASMConfig(overlap=1)).setup(a)
        g2 = AdditiveSchwarz(labels, ASMConfig(overlap=2)).setup(a)
        assert g2.ghost_rows_total() > g1.ghost_rows_total()

    def test_communication_phases(self, mesh_matrix):
        mesh, a = mesh_matrix
        labels = kway_partition(mesh.vertex_graph(), 2, seed=0)
        rasm = AdditiveSchwarz(labels, ASMConfig(overlap=1,
                                                 variant="rasm")).setup(a)
        asm = AdditiveSchwarz(labels, ASMConfig(overlap=1,
                                                variant="asm")).setup(a)
        assert rasm.communication_phases() == 1
        assert asm.communication_phases() == 2

    def test_solve_before_setup_raises(self, mesh_matrix):
        mesh, a = mesh_matrix
        pc = BlockJacobi(np.zeros(mesh.num_vertices, dtype=np.int64))
        with pytest.raises(RuntimeError):
            pc.solve(np.ones(a.shape[0]))

    def test_bad_label_count_raises(self, mesh_matrix):
        mesh, a = mesh_matrix
        with pytest.raises(ValueError):
            BlockJacobi(np.zeros(5, dtype=np.int64)).setup(a)


class TestConvergenceEffects:
    """The algorithmic facts the paper's Tables 3-4 rest on."""

    def _its(self, a, pc, rng):
        b = rng.random(a.shape[0])
        res = gmres(a, b, M=pc, rtol=1e-8, restart=30, maxiter=400)
        assert res.converged
        return res.iterations

    def test_more_subdomains_weaker_preconditioner(self, mesh_matrix, rng):
        mesh, a = mesh_matrix
        g = mesh.vertex_graph()
        its = []
        for p in (1, 4, 16):
            labels = (np.zeros(mesh.num_vertices, dtype=np.int64) if p == 1
                      else kway_partition(g, p, seed=0))
            its.append(self._its(a, BlockJacobi(labels, 0).setup(a), rng))
        assert its[0] <= its[1] <= its[2]
        assert its[2] > its[0]

    def test_overlap_reduces_iterations(self, mesh_matrix, rng):
        mesh, a = mesh_matrix
        labels = kway_partition(mesh.vertex_graph(), 8, seed=0)
        its0 = self._its(a, AdditiveSchwarz(
            labels, ASMConfig(overlap=0, fill_level=0)).setup(a), rng)
        its1 = self._its(a, AdditiveSchwarz(
            labels, ASMConfig(overlap=1, fill_level=0)).setup(a), rng)
        assert its1 <= its0

    def test_fill_reduces_iterations(self, mesh_matrix, rng):
        mesh, a = mesh_matrix
        labels = kway_partition(mesh.vertex_graph(), 8, seed=0)
        its = [self._its(a, AdditiveSchwarz(
            labels, ASMConfig(overlap=0, fill_level=k)).setup(a), rng)
            for k in (0, 2)]
        assert its[1] <= its[0]

    def test_fp32_storage_same_iterations(self, mesh_matrix, rng):
        """Table 2's premise: storage precision does not change the
        iteration count of an already-approximate preconditioner."""
        mesh, a = mesh_matrix
        labels = kway_partition(mesh.vertex_graph(), 4, seed=0)
        its64 = self._its(a, AdditiveSchwarz(
            labels, ASMConfig(fill_level=1)).setup(a), rng)
        its32 = self._its(a, AdditiveSchwarz(
            labels, ASMConfig(fill_level=1,
                              storage_dtype=np.float32)).setup(a), rng)
        assert abs(its64 - its32) <= 1

    def test_rasm_not_worse_than_asm(self, mesh_matrix, rng):
        mesh, a = mesh_matrix
        labels = kway_partition(mesh.vertex_graph(), 8, seed=0)
        its_rasm = self._its(a, AdditiveSchwarz(
            labels, ASMConfig(overlap=1, variant="rasm")).setup(a), rng)
        its_asm = self._its(a, AdditiveSchwarz(
            labels, ASMConfig(overlap=1, variant="asm")).setup(a), rng)
        assert its_rasm <= its_asm + 2


class TestScalarMatrix:
    def test_works_on_csr(self, rng):
        n = 60
        a = rng.standard_normal((n, n)) * 0.2 + np.eye(n) * 4
        m = CSRMatrix.from_dense(a)
        labels = np.repeat(np.arange(4), 15)
        pc = BlockJacobi(labels, fill_level=0).setup(m)
        b = rng.random(n)
        res = gmres(m, b, M=pc, rtol=1e-9)
        assert res.converged
        assert np.allclose(a @ res.x, b, atol=1e-6)
