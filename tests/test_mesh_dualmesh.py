"""Median-dual metrics: the conservation-critical geometric identities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import box_mesh, compute_dual_metrics, unit_cube_mesh


class TestDualVolumes:
    def test_sum_equals_mesh_volume(self, small_mesh, small_dual):
        assert np.isclose(small_dual.dual_volumes.sum(),
                          small_mesh.tet_volumes().sum())

    def test_all_positive(self, small_dual):
        assert np.all(small_dual.dual_volumes > 0)

    def test_uniform_grid_interior_equal(self):
        m = unit_cube_mesh(5)
        dm = compute_dual_metrics(m)
        interior = np.all((m.coords > 1e-12) & (m.coords < 1 - 1e-12), axis=1)
        vols = dm.dual_volumes[interior]
        assert np.allclose(vols, vols[0])


class TestClosure:
    """The discrete Gauss identity that makes the flux loop conservative."""

    def test_closure_uniform(self, tiny_mesh):
        dm = compute_dual_metrics(tiny_mesh)
        assert dm.closure_defect(tiny_mesh.edges).max() < 1e-12

    def test_closure_jittered(self, small_mesh, small_dual):
        assert small_dual.closure_defect(small_mesh.edges).max() < 1e-12

    def test_closure_graded(self, small_wing_mesh):
        dm = compute_dual_metrics(small_wing_mesh)
        assert dm.closure_defect(small_wing_mesh.edges).max() < 1e-12

    def test_boundary_normals_sum_to_zero(self, small_dual):
        # A closed surface's area vectors sum to zero.
        assert np.abs(small_dual.bnd_vertex_normals.sum(axis=0)).max() < 1e-12


class TestBoundary:
    def test_boundary_face_count_box(self):
        m = box_mesh(4, 4, 4)
        dm = compute_dual_metrics(m)
        # Kuhn subdivision: each boundary quad face of the 3x3x3 block
        # splits into 2 triangles; 6 faces x 9 quads x 2.
        assert dm.bnd_faces.shape[0] == 6 * 9 * 2

    def test_boundary_vertices_on_hull(self, small_mesh, small_dual):
        bverts = small_dual.boundary_vertices
        on_hull = np.any((small_mesh.coords[bverts] < 1e-9)
                         | (small_mesh.coords[bverts] > 1 - 1e-9), axis=1)
        assert np.all(on_hull)

    def test_boundary_area_total(self):
        m = box_mesh(4, 4, 4)
        dm = compute_dual_metrics(m)
        # Unit cube: the boundary triangles' areas sum to 6.  (Vertex
        # normals cannot be summed by norm — at cube edges they merge
        # two orthogonal faces.)
        va, vb, vc = (m.coords[dm.bnd_faces[:, k]] for k in range(3))
        areas = 0.5 * np.linalg.norm(np.cross(vb - va, vc - va), axis=1)
        assert np.isclose(areas.sum(), 6.0, rtol=1e-12)

    def test_boundary_normals_point_outward(self):
        m = box_mesh(4, 4, 4)
        dm = compute_dual_metrics(m)
        bverts = dm.boundary_vertices
        center = np.array([0.5, 0.5, 0.5])
        outward = np.einsum("ij,ij->i", dm.bnd_vertex_normals[bverts],
                            m.coords[bverts] - center)
        assert np.all(outward > 0)


class TestEdgeNormals:
    def test_orientation_roughly_along_edge(self, small_mesh, small_dual):
        e = small_mesh.edges
        d = small_mesh.coords[e[:, 1]] - small_mesh.coords[e[:, 0]]
        dots = np.einsum("ij,ij->i", small_dual.edge_normals, d)
        # Median-dual faces of a reasonable mesh face from a toward b.
        assert (dots > 0).mean() > 0.95

    def test_linear_field_gradient_exact(self, small_mesh, small_dual):
        """Green-Gauss with dual normals is exact for linear fields —
        a direct consequence of the closure identity."""
        from repro.euler.reconstruction import green_gauss_gradients
        g = np.array([1.5, -2.0, 0.75])
        q = (small_mesh.coords @ g)[:, None]
        grad = green_gauss_gradients(small_mesh, small_dual, q)
        interior = np.linalg.norm(small_dual.bnd_vertex_normals, axis=1) == 0
        assert np.allclose(grad[interior, 0, :], g, atol=1e-10)


@settings(deadline=None, max_examples=8)
@given(st.integers(2, 4), st.integers(2, 4), st.integers(2, 4),
       st.floats(0.0, 0.35), st.integers(0, 5))
def test_property_dual_metrics_consistent(nx, ny, nz, jitter, seed):
    m = box_mesh(nx, ny, nz, jitter=jitter, seed=seed)
    dm = compute_dual_metrics(m)
    assert np.all(dm.dual_volumes > 0)
    assert np.isclose(dm.dual_volumes.sum(), m.tet_volumes().sum())
    assert dm.closure_defect(m.edges).max() < 1e-11
