"""Two-level Schwarz with the Nicolaides coarse space."""

import numpy as np
import pytest

from repro.euler import wing_problem
from repro.partition import kway_partition
from repro.precond import ASMConfig, BlockJacobi, CoarseSpace, TwoLevelASM
from repro.solvers import gmres
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def shifted_jacobian():
    prob = wing_problem(9, 7, 5)
    jac = prob.disc.shifted_jacobian(prob.initial.flat(), cfl=1e4)
    return prob, jac


class TestCoarseSpace:
    def test_restrict_prolong_adjoint(self, rng):
        labels = rng.integers(0, 4, 50)
        cs = CoarseSpace(labels, ncomp=3)
        x = rng.random(150)
        yc = rng.random(cs.dim)
        # <R0 x, yc> == <x, R0^T yc>
        assert np.isclose(cs.restrict(x) @ yc, x @ cs.prolong(yc))

    def test_prolong_piecewise_constant(self):
        labels = np.array([0, 1, 0, 1])
        cs = CoarseSpace(labels, ncomp=1)
        out = cs.prolong(np.array([5.0, 7.0]))
        assert out.tolist() == [5.0, 7.0, 5.0, 7.0]

    def test_coarse_operator_galerkin(self, shifted_jacobian, rng):
        """A0 must equal R0 A R0^T computed densely."""
        prob, jac = shifted_jacobian
        labels = kway_partition(prob.mesh.vertex_graph(), 3, seed=0)
        cs = CoarseSpace(labels, ncomp=jac.bs)
        a0 = cs.build_coarse_operator(jac)
        dense = jac.to_csr().to_dense()
        r0 = np.zeros((cs.dim, dense.shape[0]))
        for v, lab in enumerate(labels):
            for c in range(jac.bs):
                r0[lab * jac.bs + c, v * jac.bs + c] = 1.0
        assert np.allclose(a0, r0 @ dense @ r0.T)

    def test_scalar_requires_ncomp1(self, rng):
        a = CSRMatrix.from_dense(np.eye(6) * 2)
        cs = CoarseSpace(np.array([0, 0, 1, 1, 2, 2]), ncomp=2)
        with pytest.raises(ValueError):
            cs.build_coarse_operator(a)

    def test_scalar_coarse_solve(self):
        a = CSRMatrix.from_dense(np.diag([1.0, 2.0, 3.0, 4.0]))
        labels = np.array([0, 0, 1, 1])
        cs = CoarseSpace(labels, ncomp=1).setup(a)
        # A0 = diag(1+2, 3+4); apply to a constant-per-part residual.
        z = cs.apply(np.array([3.0, 3.0, 7.0, 7.0]))
        assert np.allclose(z, [2.0, 2.0, 2.0, 2.0])


class TestTwoLevelASM:
    def test_setup_and_solve(self, shifted_jacobian, rng):
        prob, jac = shifted_jacobian
        labels = kway_partition(prob.mesh.vertex_graph(), 6, seed=0)
        pc = TwoLevelASM(labels, ASMConfig(fill_level=0)).setup(jac)
        assert pc.coarse_dim == 6 * jac.bs
        b = rng.random(jac.shape[0])
        res = gmres(jac, b, M=pc, rtol=1e-8, maxiter=400, restart=30)
        assert res.converged
        assert np.allclose(jac.to_csr() @ res.x, b,
                           atol=1e-6 * np.linalg.norm(b))

    def test_helps_at_many_subdomains(self, shifted_jacobian, rng):
        """The asymptotic-scalability claim: at large subdomain counts
        the coarse level reduces (or at worst matches) iterations."""
        prob, jac = shifted_jacobian
        g = prob.mesh.vertex_graph()
        b = rng.random(jac.shape[0])
        labels = kway_partition(g, 24, seed=0)
        one = BlockJacobi(labels, fill_level=0).setup(jac)
        two = TwoLevelASM(labels, ASMConfig(fill_level=0)).setup(jac)
        its1 = gmres(jac, b, M=one, rtol=1e-8, maxiter=500,
                     restart=30).iterations
        its2 = gmres(jac, b, M=two, rtol=1e-8, maxiter=500,
                     restart=30).iterations
        assert its2 <= its1

    def test_coarse_dim_zero_before_setup(self):
        pc = TwoLevelASM(np.zeros(4, dtype=np.int64))
        assert pc.coarse_dim == 0
