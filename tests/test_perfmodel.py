"""Performance models: machines, miss bounds, SpMV bounds, roofline."""

import numpy as np
import pytest

from repro.memory import CacheConfig
from repro.memory.hierarchy import HierarchyCounters
from repro.perfmodel import (ASCI_RED_PPRO, CRAY_T3E_600,
                             MACHINES, ORIGIN2000_R10K, conflict_miss_bound,
                             kernel_time_from_counters, predict_kernel_time,
                             roofline_performance, spmv_bandwidth_mflops,
                             spmv_traffic_bytes, stream_time, tlb_miss_bound)
from repro.perfmodel.roofline import ridge_intensity, roofline_curve
from repro.perfmodel.stream import measure_stream_triad


class TestMachines:
    def test_registry(self):
        assert len(MACHINES) == 4
        assert ORIGIN2000_R10K.name in MACHINES

    def test_peak_rates(self):
        assert ORIGIN2000_R10K.peak_flops == 500e6
        assert ASCI_RED_PPRO.peak_flops == 333e6
        assert CRAY_T3E_600.peak_flops == 1200e6

    def test_all_bandwidth_bound_for_spmv(self):
        """The paper-era fact: every machine's ridge point is far above
        SpMV's ~0.15 flops/byte intensity."""
        for m in MACHINES.values():
            assert ridge_intensity(m) > 1.0

    def test_r10000_geometry_matches_paper(self):
        """Table 1 caption: 32 KB L1 data, 4 MB L2."""
        assert ORIGIN2000_R10K.l1.capacity_bytes == 32 * 1024
        assert ORIGIN2000_R10K.l2.capacity_bytes == 4 * 1024 * 1024

    def test_scaled_caches(self):
        s = ORIGIN2000_R10K.scaled_caches(16)
        assert s.l2.capacity_bytes <= ORIGIN2000_R10K.l2.capacity_bytes // 8
        # TLB scales page size, keeping the entry count (concurrency).
        assert s.tlb.entries == ORIGIN2000_R10K.tlb.entries
        assert s.tlb.page_bytes <= ORIGIN2000_R10K.tlb.page_bytes // 8
        assert s.l1.line_bytes == ORIGIN2000_R10K.l1.line_bytes


class TestMissBounds:
    def test_zero_when_fits(self):
        c = CacheConfig("c", 32 * 1024, 32, 2)   # 4096 words
        assert conflict_miss_bound(1000, 2000, c) == 0.0

    def test_grows_with_bandwidth(self):
        c = CacheConfig("c", 8 * 1024, 32, 2)    # 1024 words
        b1 = conflict_miss_bound(1000, 2048, c)
        b2 = conflict_miss_bound(1000, 8192, c)
        assert 0 < b1 < b2

    def test_eq1_vs_eq2_contrast(self):
        """The paper's point: noninterlaced (beta ~ N) blows the bound,
        interlaced+RCM (beta << N) zeroes it."""
        n = 100_000
        c = CacheConfig("c", 512 * 1024, 128, 2)     # 64K words
        eq1 = conflict_miss_bound(n, n, c)           # noninterlaced
        eq2 = conflict_miss_bound(n, 4 * int(n**(2 / 3)), c)  # RCM surface
        assert eq1 > 0
        assert eq2 == 0

    def test_tlb_bound(self):
        from repro.memory.tlb import TLBConfig
        t = TLBConfig("t", 64, 16384)   # reach 1 MiB = 131072 words
        assert tlb_miss_bound(1000, 100_000, t) == 0
        assert tlb_miss_bound(1000, 200_000, t) > 0

    def test_linear_in_rows(self):
        c = CacheConfig("c", 8 * 1024, 32, 2)
        assert (conflict_miss_bound(2000, 4096, c)
                == 2 * conflict_miss_bound(1000, 4096, c))


class TestSpMVModel:
    def test_traffic_components(self):
        t = spmv_traffic_bytes(1000, 15000)
        assert t.matrix_bytes == 15000 * 8
        assert t.index_bytes == 15000 * 4 + 1001 * 4
        assert t.total > 0

    def test_blocking_reduces_traffic(self):
        t1 = spmv_traffic_bytes(1000, 16000, block_size=1)
        t4 = spmv_traffic_bytes(1000, 16000, block_size=4)
        assert t4.index_bytes < t1.index_bytes / 8
        assert t4.total < t1.total

    def test_blocking_raises_mflops(self):
        m1 = spmv_bandwidth_mflops(90708, 90708 * 60, ORIGIN2000_R10K)
        m4 = spmv_bandwidth_mflops(90708, 90708 * 60, ORIGIN2000_R10K,
                                   block_size=4)
        assert m4 > m1 * 1.2

    def test_fp32_nearly_doubles_mflops(self):
        """Table 2's mechanism in the model."""
        m8 = spmv_bandwidth_mflops(10000, 150000, ORIGIN2000_R10K,
                                   block_size=4, value_bytes=8)
        m4 = spmv_bandwidth_mflops(10000, 150000, ORIGIN2000_R10K,
                                   block_size=4, value_bytes=4)
        assert 1.6 < m4 / m8 < 2.0

    def test_far_below_peak(self):
        """SpMV attains ~10% of peak on period machines — the memory
        wall the paper is about."""
        for m in MACHINES.values():
            mflops = spmv_bandwidth_mflops(90708, 90708 * 60, m)
            assert mflops < 0.25 * m.peak_flops / 1e6


class TestTimeModel:
    def test_prediction_decomposition(self):
        c = HierarchyCounters(accesses=10_000, l1_misses=1000,
                              l2_misses=100, tlb_misses=10)
        p = kernel_time_from_counters(c, flops=20_000, machine=ORIGIN2000_R10K)
        assert p.total > 0
        assert p.total >= max(p.flop_time, p.bandwidth_time)
        assert p.bound in ("memory-bandwidth", "instruction-issue")

    def test_more_misses_cost_more(self):
        base = HierarchyCounters(10_000, 1000, 100, 10)
        worse = HierarchyCounters(10_000, 1000, 100, 10_000)
        t0 = kernel_time_from_counters(base, 1e4, ORIGIN2000_R10K).total
        t1 = kernel_time_from_counters(worse, 1e4, ORIGIN2000_R10K).total
        assert t1 > t0

    def test_predict_kernel_time_max(self):
        # Compute bound.
        assert predict_kernel_time(1e9, 8, ORIGIN2000_R10K) == \
            pytest.approx(2.0)
        # Bandwidth bound.
        assert predict_kernel_time(8, 300e6, ORIGIN2000_R10K) == \
            pytest.approx(1.0)

    def test_stream_time(self):
        assert stream_time(300e6, 300e6) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            stream_time(1.0, 0.0)


class TestRoofline:
    def test_bandwidth_regime(self):
        p = roofline_performance(0.1, ORIGIN2000_R10K)
        assert p == pytest.approx(0.1 * ORIGIN2000_R10K.stream_bw)

    def test_compute_regime(self):
        p = roofline_performance(100.0, ORIGIN2000_R10K)
        assert p == ORIGIN2000_R10K.peak_flops

    def test_curve_monotone(self):
        xs, ys = roofline_curve(CRAY_T3E_600)
        assert np.all(np.diff(ys) >= 0)
        assert ys[-1] == CRAY_T3E_600.peak_flops

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            roofline_performance(-1.0, ORIGIN2000_R10K)


class TestStreamMeasurement:
    def test_host_bandwidth_sane(self):
        res = measure_stream_triad(n=200_000, repeats=2)
        # Any machine this runs on moves > 100 MB/s and < 10 TB/s.
        assert 1e8 < res.triad < 1e13
        assert set(res) == {"copy", "scale", "add", "triad"}
