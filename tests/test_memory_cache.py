"""Cache and TLB simulator semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import CacheConfig,  simulate_trace
from repro.memory.cache import make_cache_sim
from repro.memory.tlb import TLBConfig, tlb_cache_config, tlb_sim

# Every semantics test runs against both the per-reference oracle and
# the vectorised fast engine (see tests/test_memory_fastsim.py for the
# direct equivalence suite).
ENGINES = ["ref", "fast"]


def cfg(capacity=256, line=32, assoc=2, name="t"):
    return CacheConfig(name, capacity, line, assoc)


class TestConfig:
    def test_nsets(self):
        c = cfg(1024, 32, 2)
        assert c.nsets == 16
        assert c.capacity_words == 128
        assert c.line_words == 4

    def test_rejects_nonpow2_sets(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 96, 32, 1)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 100, 32, 2)

    def test_fully_associative(self):
        fa = cfg(256, 32, 2).fully_associative()
        assert fa.nsets == 1
        assert fa.associativity == 8


@pytest.mark.parametrize("engine", ENGINES)
class TestSemantics:
    def test_compulsory_misses_only(self, engine):
        """Sequential walk over fresh memory: one miss per line."""
        addrs = np.arange(0, 64 * 32, 8)   # 64 lines of 32B, 8B steps
        c = simulate_trace(addrs, cfg(capacity=4096, line=32, assoc=2),
                           engine=engine)
        assert c.misses == 64
        assert c.accesses == addrs.size

    def test_repeat_hits_when_fits(self, engine):
        addrs = np.tile(np.arange(0, 128, 8), 10)
        c = simulate_trace(addrs, cfg(capacity=256, line=32, assoc=2),
                           engine=engine)
        assert c.misses == 4   # 4 lines, compulsory only

    def test_capacity_thrash(self, engine):
        """Cyclic walk over 2x the capacity with LRU misses everything."""
        nlines = 16
        addrs = np.tile(np.arange(nlines) * 32, 5)
        c = simulate_trace(addrs, cfg(capacity=nlines * 16, line=32,
                                      assoc=nlines // 2), engine=engine)
        assert c.misses == c.accesses

    def test_conflict_misses_direct_mapped(self, engine):
        """Two addresses mapping to the same set of a direct-mapped
        cache evict each other; 2-way associativity fixes it."""
        capacity = 256
        a, b = 0, capacity        # same set in direct-mapped
        addrs = np.array([a, b] * 50)
        dm = simulate_trace(addrs, cfg(capacity, 32, 1), engine=engine)
        assert dm.misses == 100
        sa = simulate_trace(addrs, cfg(capacity, 32, 2), engine=engine)
        assert sa.misses == 2

    def test_lru_order(self, engine):
        """LRU evicts the least recently used, not the oldest insert."""
        line = 32
        c = cfg(capacity=2 * line, line=line, assoc=2)  # one set, 2 ways
        sim = make_cache_sim(c, engine)
        A, B, C = 0, line * 7, line * 13   # map to the same (only) set
        sim.access(np.array([A, B, A, C]))  # C evicts B (A was refreshed)
        m = sim.misses
        sim.access(np.array([A]))
        assert sim.misses == m            # A still resident
        sim.access(np.array([B]))
        assert sim.misses == m + 1        # B was the LRU victim

    def test_miss_mask_filters_for_next_level(self, engine):
        addrs = np.array([0, 0, 32, 32, 64])
        sim = make_cache_sim(cfg(capacity=4096, line=32, assoc=2), engine)
        mask = sim.access(addrs, record_misses=True)
        assert mask.tolist() == [True, False, True, False, True]

    def test_reset(self, engine):
        sim = make_cache_sim(cfg(), engine)
        sim.access(np.arange(0, 1024, 32))
        sim.reset()
        assert sim.accesses == 0 and sim.misses == 0

    def test_counters_rates(self, engine):
        c = simulate_trace(np.array([0, 0, 0, 0]), cfg(), engine=engine)
        assert c.miss_rate == 0.25
        assert c.hits == 3


class TestTLB:
    def test_tlb_is_fully_associative(self):
        t = TLBConfig("tlb", 8, 4096)
        cc = tlb_cache_config(t)
        assert cc.nsets == 1
        assert cc.associativity == 8

    def test_reach(self):
        t = TLBConfig("tlb", 64, 16384)
        assert t.reach_bytes == 1024 * 1024

    @pytest.mark.parametrize("engine", ENGINES)
    def test_page_locality_no_misses(self, engine):
        t = tlb_sim(TLBConfig("tlb", 4, 4096), engine=engine)
        t.access(np.arange(0, 4096, 8))   # one page
        assert t.misses == 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_page_thrash(self, engine):
        t = tlb_sim(TLBConfig("tlb", 4, 4096), engine=engine)
        pages = np.arange(8) * 4096        # 8 pages, 4 entries
        t.access(np.tile(pages, 3))
        assert t.misses == 24              # cyclic LRU thrash


@settings(deadline=None, max_examples=20)
@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200),
       st.sampled_from([1, 2, 4]))
def test_property_misses_bounded(addr_list, assoc):
    """Misses never exceed accesses and never undercut the number of
    distinct lines (compulsory floor)."""
    addrs = np.array(addr_list) * 8
    config = CacheConfig("p", 512, 32, assoc)
    c = simulate_trace(addrs, config)
    distinct_lines = np.unique(addrs // 32).size
    assert distinct_lines <= c.misses <= c.accesses
