"""Mesh generator tests: validity, counts, grading, shuffling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import box_mesh, shuffle_vertices, unit_cube_mesh, wing_mesh


class TestBoxMesh:
    def test_vertex_count(self):
        m = box_mesh(3, 4, 5)
        assert m.num_vertices == 60

    def test_tet_count_six_per_cube(self):
        m = box_mesh(3, 3, 3)
        assert m.num_tets == 6 * 2 * 2 * 2

    def test_positive_volumes(self):
        m = box_mesh(4, 3, 5, jitter=0.3, seed=2)
        assert np.all(m.tet_volumes() > 0)

    def test_volume_sums_to_box(self):
        m = box_mesh(5, 4, 3, jitter=0.25, seed=9)
        assert np.isclose(m.tet_volumes().sum(), 1.0)

    def test_jitter_keeps_boundary_fixed(self):
        m0 = box_mesh(4, 4, 4)
        m1 = box_mesh(4, 4, 4, jitter=0.3, seed=1)
        boundary = np.any((m0.coords < 1e-12) | (m0.coords > 1 - 1e-12), axis=1)
        assert np.allclose(m0.coords[boundary], m1.coords[boundary])

    def test_jitter_moves_interior(self):
        m0 = box_mesh(4, 4, 4)
        m1 = box_mesh(4, 4, 4, jitter=0.3, seed=1)
        assert not np.allclose(m0.coords, m1.coords)

    def test_deterministic_by_seed(self):
        a = box_mesh(4, 4, 4, jitter=0.2, seed=5)
        b = box_mesh(4, 4, 4, jitter=0.2, seed=5)
        assert np.array_equal(a.coords, b.coords)

    def test_rejects_small_axes(self):
        with pytest.raises(ValueError):
            box_mesh(1, 4, 4)

    def test_rejects_big_jitter(self):
        with pytest.raises(ValueError):
            box_mesh(3, 3, 3, jitter=0.6)

    def test_conforming_no_hanging_edges(self):
        """Every tet edge must be in the unique edge list (tested via
        tet_edge_indices not raising)."""
        from repro.mesh.edges import tet_edge_indices
        m = box_mesh(4, 4, 4, jitter=0.3, seed=3)
        idx, sign = tet_edge_indices(m.tets, m.edges, m.num_vertices)
        assert idx.shape == (m.num_tets, 6)
        assert set(np.unique(sign)) <= {-1, 1}

    def test_average_degree_3d_like(self):
        m = unit_cube_mesh(8)
        # Interior vertices of the Kuhn subdivision have degree 14;
        # boundary lowers the average.
        assert 8 < m.average_degree < 14


class TestWingMesh:
    def test_valid(self, small_wing_mesh):
        assert np.all(small_wing_mesh.tet_volumes() > 0)

    def test_graded_toward_wall(self):
        m = wing_mesh(5, 5, 9, jitter=0.0)
        z = np.unique(np.round(m.coords[:, 2], 12))
        dz = np.diff(z)
        assert dz[0] < dz[-1]  # spacing grows away from the wall

    def test_same_connectivity_as_box(self):
        w = wing_mesh(5, 4, 4, jitter=0.2, seed=3)
        b = box_mesh(5, 4, 4, jitter=0.2, seed=3)
        assert np.array_equal(w.edges, b.edges)
        assert np.array_equal(w.tets, b.tets)

    def test_domain_preserved(self):
        m = wing_mesh(6, 6, 6, jitter=0.0)
        assert m.coords.min() >= -1e-12
        assert m.coords.max() <= 1 + 1e-12


class TestShuffle:
    def test_preserves_geometry(self, small_mesh):
        s = shuffle_vertices(small_mesh, seed=3)
        assert np.isclose(s.tet_volumes().sum(),
                          small_mesh.tet_volumes().sum())
        assert s.num_edges == small_mesh.num_edges

    def test_degree_multiset_invariant(self, small_mesh):
        s = shuffle_vertices(small_mesh, seed=3)
        assert (sorted(s.vertex_graph().degrees())
                == sorted(small_mesh.vertex_graph().degrees()))

    def test_edges_canonical(self, small_mesh):
        s = shuffle_vertices(small_mesh, seed=3)
        assert np.all(s.edges[:, 0] < s.edges[:, 1])


@settings(deadline=None, max_examples=10)
@given(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5),
       st.floats(0.0, 0.4))
def test_property_mesh_always_valid(nx, ny, nz, jitter):
    m = box_mesh(nx, ny, nz, jitter=jitter, seed=1)
    vols = m.tet_volumes()
    assert np.all(vols > 0)
    assert np.isclose(vols.sum(), 1.0)
    assert m.num_tets == 6 * (nx - 1) * (ny - 1) * (nz - 1)
    assert np.all(m.edges[:, 0] < m.edges[:, 1])
