"""Transonic bump flow: order switching and limiter robustness.

These integration tests exercise the paper's Sec. 2.4.1 shocked-flow
continuation machinery: first-order start, SER exponent damping, the
order switchover, and limiter selection.
"""

import numpy as np
import pytest

from repro.core import NKSSolver, SolverConfig
from repro.euler import transonic_bump_problem
from repro.solvers.ptc import PTCConfig


@pytest.fixture(scope="module")
def bump_solution():
    """One converged transonic solve shared across assertions."""
    prob = transonic_bump_problem(13, 4, 7, mach=0.84, limiter="minmod")
    cfg = SolverConfig(
        ptc=PTCConfig(cfl0=2.0, exponent=0.75, switch_order_drop=1e-2,
                      first_order_exponent=1.5),
        max_steps=80, target_reduction=3e-6, matrix_free=True,
        jacobian_lag=2)
    rep = NKSSolver(prob.disc, cfg).solve(prob.initial.flat())
    return prob, rep


def _primitives(q):
    rho = q[:, 0]
    vel = q[:, 1:4] / rho[:, None]
    p = 0.4 * (q[:, 4] - 0.5 * rho * np.einsum("ij,ij->i", vel, vel))
    mach = np.linalg.norm(vel, axis=1) / np.sqrt(1.4 * p / rho)
    return rho, vel, p, mach


class TestTransonicSolve:
    def test_converges_with_minmod(self, bump_solution):
        prob, rep = bump_solution
        assert rep.converged

    def test_flow_accelerates_over_bump(self, bump_solution):
        prob, rep = bump_solution
        q = rep.final_state.reshape(-1, 5)
        rho, vel, p, mach = _primitives(q)
        # Pressure on the bump crest is below the upstream-floor value
        # (Bernoulli-like acceleration), by a clear margin.
        bc = prob.disc.bc
        floor = bc.vertices[bc.wall_mask]
        x = prob.mesh.coords[floor, 0]
        crest = floor[np.abs(x - 0.5) < 0.12]
        upstream = floor[(x > 0.2) & (x < 0.32)]
        assert p[crest].min() < p[upstream].mean() - 0.05

    def test_recompression_downstream(self, bump_solution):
        """The lee-side pressure recovery (the shock's footprint at this
        resolution)."""
        prob, rep = bump_solution
        q = rep.final_state.reshape(-1, 5)
        _, _, p, _ = _primitives(q)
        bc = prob.disc.bc
        floor = bc.vertices[bc.wall_mask]
        x = prob.mesh.coords[floor, 0]
        crest_min = p[floor[np.abs(x - 0.5) < 0.15]].min()
        lee = p[floor[(x > 0.65) & (x < 0.85)]].mean()
        assert lee > crest_min + 0.1

    def test_state_stays_physical(self, bump_solution):
        prob, rep = bump_solution
        q = rep.final_state.reshape(-1, 5)
        rho, _, p, _ = _primitives(q)
        assert np.all(rho > 0)
        assert np.all(p > 0)

    def test_order_switch_happened(self):
        """The SER controller must have switched first -> second order
        during the solve (residual drop crosses the threshold)."""
        from repro.solvers.ptc import SERController
        prob = transonic_bump_problem(13, 4, 7, limiter="minmod")
        cfg = PTCConfig(cfl0=2.0, exponent=0.75, switch_order_drop=1e-2,
                        first_order_exponent=1.5)
        c = SERController(cfg)
        assert not c.second_order
        c.update(1.0)
        c.update(0.5)
        assert not c.second_order
        c.update(0.009)
        assert c.second_order


class TestLimiterRobustness:
    def test_van_albada_limit_cycles_minmod_converges(self):
        """Observed (and physically typical) behaviour at shocks: the
        smooth van Albada limiter limit-cycles around 1e-3 relative
        residual while minmod reaches deep convergence — the kind of
        case-specific nonlinear-convergence behaviour the paper's
        Fig. 5 caption warns about."""
        cfg = SolverConfig(
            ptc=PTCConfig(cfl0=2.0, exponent=0.75, switch_order_drop=1e-2,
                          first_order_exponent=1.5),
            max_steps=50, target_reduction=1e-5, matrix_free=True,
            jacobian_lag=2)
        out = {}
        for limiter in ("minmod", "van_albada"):
            prob = transonic_bump_problem(13, 4, 7, limiter=limiter)
            rep = NKSSolver(prob.disc, cfg).solve(prob.initial.flat())
            out[limiter] = (rep.residual_history / rep.fnorm0).min()
        assert out["minmod"] < 1e-5
        assert out["minmod"] < out["van_albada"]
