"""Shared fixtures: small meshes and graphs reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh import unit_cube_mesh, wing_mesh, compute_dual_metrics


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_mesh():
    """64 vertices — cheapest valid 3-D mesh for unit tests."""
    return unit_cube_mesh(4)


@pytest.fixture(scope="session")
def small_mesh():
    """216 vertices, jittered so nothing is accidentally symmetric."""
    return unit_cube_mesh(6, jitter=0.25, seed=7)


@pytest.fixture(scope="session")
def medium_mesh():
    """1000 vertices — for partitioners and ordering statistics."""
    return unit_cube_mesh(10, jitter=0.2, seed=3)


@pytest.fixture(scope="session")
def small_wing_mesh():
    return wing_mesh(7, 5, 4, seed=1)


@pytest.fixture(scope="session")
def small_dual(small_mesh):
    return compute_dual_metrics(small_mesh)


@pytest.fixture(scope="session")
def small_graph(small_mesh):
    return small_mesh.vertex_graph()


@pytest.fixture(scope="session")
def medium_graph(medium_mesh):
    return medium_mesh.vertex_graph()
