"""The edge-based FV discretisation: conservation, exactness, Jacobians."""

import numpy as np
import pytest

from repro.euler import (IncompressibleEuler,
                         classify_box_boundary, duct_problem,
                         incompressible_freestream, wing_problem)
from repro.euler.reconstruction import (Limiter, green_gauss_gradients,
                                        reconstruct_edge_states)

class TestFreestreamPreservation:
    """Uniform flow is an exact steady state on an all-farfield box."""

    @pytest.mark.parametrize("compressible", [False, True])
    @pytest.mark.parametrize("order2", [False, True])
    def test_exact(self, compressible, order2):
        prob = duct_problem(4, compressible=compressible,
                            second_order=order2)
        r = prob.disc.residual(prob.initial.flat())
        assert np.abs(r).max() < 1e-12


class TestConservation:
    def test_interior_fluxes_telescope(self, small_mesh, small_dual, rng):
        """Summing the residual over all vertices leaves only boundary
        fluxes: interior Rusanov fluxes cancel pairwise."""
        bc = classify_box_boundary(small_mesh, small_dual, wall_region=None)
        fs = incompressible_freestream(small_mesh.num_vertices)
        disc = IncompressibleEuler(small_mesh, bc, small_dual, farfield=fs,
                                   second_order=False)
        q = fs.flat() + 0.05 * rng.standard_normal(disc.num_unknowns)
        r = disc.residual(q).reshape(-1, 4)
        # Rebuild only the boundary flux and compare the global sum.
        qf = q.reshape(-1, 4)
        rb = np.zeros_like(qf)
        disc._add_boundary_residual(qf, rb)
        assert np.allclose(r.sum(axis=0), rb.sum(axis=0), atol=1e-10)


class TestJacobians:
    def _fd_dense(self, disc, q, eps=1e-6):
        n = q.size
        j = np.zeros((n, n))
        r0 = disc.residual(q, second_order=False)
        for c in range(n):
            qp = q.copy()
            qp[c] += eps
            j[:, c] = (disc.residual(qp, second_order=False) - r0) / eps
        return j

    def test_assembled_close_to_fd(self, rng):
        prob = wing_problem(4, 3, 3, second_order=False)
        q = prob.initial.flat() + 0.01 * rng.standard_normal(
            prob.num_unknowns)
        ja = prob.disc.assemble_jacobian(q).to_csr().to_dense()
        jf = self._fd_dense(prob.disc, q)
        # Frozen-lambda dissipation: small relative error allowed.
        denom = np.abs(jf).max()
        assert np.abs(ja - jf).max() / denom < 0.02

    def test_compressible_assembled_close_to_fd(self, rng):
        prob = wing_problem(4, 3, 3, compressible=True, second_order=False)
        q = prob.initial.flat() * (1 + 0.001 * rng.standard_normal(
            prob.num_unknowns))
        ja = prob.disc.assemble_jacobian(q).to_csr().to_dense()
        jf = self._fd_dense(prob.disc, q)
        denom = np.abs(jf).max()
        assert np.abs(ja - jf).max() / denom < 0.02

    def test_matrix_free_matches_assembled_first_order(self, rng):
        prob = wing_problem(4, 3, 3, second_order=False)
        disc = prob.disc
        q = prob.initial.flat() + 0.01 * rng.standard_normal(disc.num_unknowns)
        v = rng.standard_normal(disc.num_unknowns)
        op = disc.jacobian_operator(q, second_order=False)
        jv_mf = op.matvec(v)
        jv_asm = disc.assemble_jacobian(q).to_csr() @ v
        rel = (np.linalg.norm(jv_mf - jv_asm)
               / max(np.linalg.norm(jv_asm), 1e-30))
        assert rel < 0.05  # FD noise + frozen lambda

    def test_shifted_jacobian_adds_positive_diagonal(self, rng):
        prob = wing_problem(4, 3, 3)
        q = prob.initial.flat()
        j0 = prob.disc.assemble_jacobian(q).to_csr().to_dense()
        j1 = prob.disc.shifted_jacobian(q, cfl=5.0).to_csr().to_dense()
        d = np.diag(j1 - j0)
        assert np.all(d > 0)
        off = (j1 - j0) - np.diag(d)
        assert np.abs(off).max() < 1e-12

    def test_shift_scales_inversely_with_cfl(self):
        prob = wing_problem(4, 3, 3)
        q = prob.initial.flat()
        s1 = prob.disc.timestep_shift(q, 1.0)
        s10 = prob.disc.timestep_shift(q, 10.0)
        assert np.allclose(s1, 10 * s10)
        assert np.all(s1 > 0)


class TestReconstruction:
    def test_gradients_exact_for_linear(self, small_mesh, small_dual):
        g = np.array([[2.0, -1.0, 0.5], [0.0, 3.0, 1.0]]).T  # (3, 2)
        q = small_mesh.coords @ g          # (n, 2) linear fields
        grad = green_gauss_gradients(small_mesh, small_dual, q)
        interior = np.linalg.norm(small_dual.bnd_vertex_normals,
                                  axis=1) == 0
        for c in range(2):
            assert np.allclose(grad[interior, c, :], g[:, c], atol=1e-10)

    def test_reconstruction_exact_for_linear_unlimited(self, small_mesh,
                                                       small_dual):
        g = np.array([1.0, 2.0, -0.5])
        q = (small_mesh.coords @ g)[:, None]
        grad = green_gauss_gradients(small_mesh, small_dual, q)
        ql, qr = reconstruct_edge_states(small_mesh, small_dual, q, grad,
                                         Limiter.NONE)
        e = small_mesh.edges
        mid = 0.5 * (small_mesh.coords[e[:, 0]] + small_mesh.coords[e[:, 1]])
        exact = (mid @ g)[:, None]
        interior_edge = (np.linalg.norm(small_dual.bnd_vertex_normals[e],
                                        axis=2) == 0).all(axis=1)
        assert np.allclose(ql[interior_edge], exact[interior_edge],
                           atol=1e-10)
        assert np.allclose(qr[interior_edge], exact[interior_edge],
                           atol=1e-10)

    def test_limiters_bounded_by_neighbors(self, small_mesh, small_dual,
                                           rng):
        """Limited edge states stay within the local data range."""
        q = rng.random((small_mesh.num_vertices, 1))
        grad = green_gauss_gradients(small_mesh, small_dual, q)
        for lim in (Limiter.VAN_ALBADA, Limiter.MINMOD):
            ql, qr = reconstruct_edge_states(small_mesh, small_dual, q,
                                             grad, lim)
            e = small_mesh.edges
            lo = np.minimum(q[e[:, 0]], q[e[:, 1]])
            hi = np.maximum(q[e[:, 0]], q[e[:, 1]])
            span = hi - lo
            assert np.all(ql >= lo - span - 1e-12)
            assert np.all(ql <= hi + span + 1e-12)

    def test_second_order_shrinks_interface_jumps(self, small_mesh,
                                                  small_dual):
        """Rusanov dissipation is proportional to |qr - ql| at each dual
        face; MUSCL reconstruction of a smooth field must shrink those
        jumps relative to the first-order (nodal) states."""
        x = small_mesh.coords[:, 0]
        q = np.sin(2 * np.pi * x)[:, None]
        grad = green_gauss_gradients(small_mesh, small_dual, q)
        ql, qr = reconstruct_edge_states(small_mesh, small_dual, q, grad,
                                         Limiter.VAN_ALBADA)
        e = small_mesh.edges
        jump1 = np.abs(q[e[:, 1]] - q[e[:, 0]]).mean()
        jump2 = np.abs(qr - ql).mean()
        assert jump2 < 0.5 * jump1


class TestAccounting:
    def test_residual_eval_counter(self):
        prob = duct_problem(3)
        n0 = prob.disc.nresidual_evals
        prob.disc.residual(prob.initial.flat())
        assert prob.disc.nresidual_evals == n0 + 1

    def test_flop_counts_positive_and_ordered(self):
        prob = wing_problem(4, 4, 3)
        f1 = prob.disc.residual_flops(second_order=False)
        f2 = prob.disc.residual_flops(second_order=True)
        assert 0 < f1 < f2
