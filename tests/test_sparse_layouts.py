"""Layout transforms: interlaced vs field-split storage (Sec. 2.1.1)."""

import numpy as np
import pytest

from repro.graph.rcm import bandwidth
from repro.graph.adjacency import graph_from_csr
from repro.sparse import (assemble_bsr, block_structure_from_edges,
                          field_split_csr_from_bsr, interlaced_csr_from_bsr)
from repro.sparse.layouts import field_split_permutation


@pytest.fixture(scope="module")
def assembled(small_mesh, rng):
    bs = 4
    st = block_structure_from_edges(small_mesh.num_vertices, small_mesh.edges)
    n, ne = small_mesh.num_vertices, small_mesh.num_edges
    diag = rng.standard_normal((n, bs, bs)) + 8 * np.eye(bs)
    a = assemble_bsr(st, bs, diag,
                     off_ij=rng.standard_normal((ne, bs, bs)),
                     off_ji=rng.standard_normal((ne, bs, bs)))
    return small_mesh, a


class TestBlockStructure:
    def test_pattern_size(self, small_mesh):
        st = block_structure_from_edges(small_mesh.num_vertices,
                                        small_mesh.edges)
        assert st.nnzb == small_mesh.num_vertices + 2 * small_mesh.num_edges

    def test_slots_disjoint_and_complete(self, small_mesh):
        st = block_structure_from_edges(small_mesh.num_vertices,
                                        small_mesh.edges)
        all_slots = np.concatenate([st.diag_slots, st.edge_ij_slots,
                                    st.edge_ji_slots])
        assert np.array_equal(np.sort(all_slots), np.arange(st.nnzb))

    def test_duplicate_edges_rejected(self):
        with pytest.raises(ValueError):
            block_structure_from_edges(3, np.array([[0, 1], [0, 1]]))

    def test_assembly_places_blocks(self, assembled, rng):
        mesh, a = assembled
        dense = a.to_csr().to_dense()
        e = mesh.edges[0]
        bs = a.bs
        blk = dense[bs*e[0]:bs*e[0]+bs, bs*e[1]:bs*e[1]+bs]
        assert not np.allclose(blk, 0)


class TestFieldSplit:
    def test_permutation_is_involution_structure(self, assembled):
        mesh, a = assembled
        perm = field_split_permutation(a.nbrows, a.bs)
        assert np.array_equal(np.sort(perm), np.arange(a.shape[0]))

    def test_spmv_equivalent_under_relabeling(self, assembled, rng):
        mesh, a = assembled
        inter = interlaced_csr_from_bsr(a)
        split = field_split_csr_from_bsr(a)
        perm = field_split_permutation(a.nbrows, a.bs)
        x = rng.random(a.shape[0])
        y_int = inter @ x
        y_split = split @ x[perm]
        assert np.allclose(y_split, y_int[perm])

    def test_field_split_has_wide_bandwidth(self, assembled):
        """The paper's Eq. 1 premise: noninterlaced storage makes the
        matrix bandwidth comparable to N."""
        mesh, a = assembled
        inter = interlaced_csr_from_bsr(a)
        split = field_split_csr_from_bsr(a)
        g_int = graph_from_csr(inter.indptr, inter.indices)
        g_split = graph_from_csr(split.indptr, split.indices)
        n = a.shape[0]
        assert bandwidth(g_split) > 0.7 * n * (a.bs - 1) / a.bs
        assert bandwidth(g_int) < bandwidth(g_split)

    def test_same_nnz(self, assembled):
        mesh, a = assembled
        assert (interlaced_csr_from_bsr(a).nnz
                == field_split_csr_from_bsr(a).nnz)
