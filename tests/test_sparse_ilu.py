"""ILU(k) factorisation: symbolic fill levels, numeric accuracy."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, ilu_bsr, ilu_csr, ilu_symbolic
from repro.sparse.bsr import BSRMatrix


def diag_dominant(n, density, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a[np.abs(a) < np.quantile(np.abs(a), 1 - density)] = 0.0
    a += np.eye(n) * (np.abs(a).sum(axis=1).max() + 1)
    return a


class TestSymbolic:
    def test_ilu0_pattern_is_input_pattern(self):
        a = diag_dominant(20, 0.2, 0)
        m = CSRMatrix.from_dense(a)
        pat = ilu_symbolic(m.indptr, m.indices, 0)
        assert pat.nnz == m.nnz
        assert np.all(pat.l_levels == 0)
        assert np.all(pat.u_levels == 0)

    def test_fill_monotone_in_level(self):
        a = diag_dominant(25, 0.15, 1)
        m = CSRMatrix.from_dense(a)
        sizes = [ilu_symbolic(m.indptr, m.indices, k).nnz for k in range(4)]
        assert all(s2 >= s1 for s1, s2 in zip(sizes, sizes[1:]))

    def test_full_fill_matches_dense_lu_pattern(self):
        """With level n the pattern must contain the exact LU fill."""
        a = diag_dominant(12, 0.25, 2)
        m = CSRMatrix.from_dense(a)
        pat = ilu_symbolic(m.indptr, m.indices, 12)
        import scipy.linalg as sla
        p, l, u = sla.lu(a)
        assert np.allclose(p, np.eye(12))  # diag dominance: no pivoting
        for i in range(12):
            cols = set(pat.l_indices[pat.l_indptr[i]:pat.l_indptr[i+1]].tolist())
            lu_cols = set(np.nonzero(np.abs(l[i, :i]) > 1e-13)[0].tolist())
            assert lu_cols <= cols

    def test_levels_bounded(self):
        a = diag_dominant(20, 0.2, 3)
        m = CSRMatrix.from_dense(a)
        pat = ilu_symbolic(m.indptr, m.indices, 2)
        assert pat.l_levels.max(initial=0) <= 2
        assert pat.u_levels.max(initial=0) <= 2

    def test_missing_diagonal_inserted(self):
        a = np.array([[0.0, 1.0], [1.0, 3.0]])
        # Structurally missing (0,0); symbolic must insert it.
        rows, cols = np.nonzero(a)
        m = CSRMatrix.from_coo(rows, cols, a[rows, cols], (2, 2))
        pat = ilu_symbolic(m.indptr, m.indices, 0)
        assert pat.nnz == m.nnz + 1


class TestNumericCSR:
    def test_full_fill_equals_direct_solve(self, rng):
        a = diag_dominant(25, 0.2, 4)
        m = CSRMatrix.from_dense(a)
        f = ilu_csr(m, 25)
        b = rng.random(25)
        assert np.allclose(a @ f.solve(b), b, atol=1e-9)

    def test_ilu0_product_matches_a_on_pattern(self):
        """The defining ILU(0) property: (L U)_ij = a_ij on the pattern."""
        a = diag_dominant(15, 0.25, 5)
        m = CSRMatrix.from_dense(a)
        f = ilu_csr(m, 0)
        n = 15
        L = np.eye(n)
        U = np.zeros((n, n))
        p = f.pattern
        for i in range(n):
            L[i, p.l_indices[p.l_indptr[i]:p.l_indptr[i+1]]] = \
                f.l_data[p.l_indptr[i]:p.l_indptr[i+1]]
            U[i, p.u_indices[p.u_indptr[i]:p.u_indptr[i+1]]] = \
                f.u_data[p.u_indptr[i]:p.u_indptr[i+1]]
            U[i, i] = 1.0 / f.inv_diag[i]
        prod = L @ U
        mask = a != 0
        assert np.allclose(prod[mask], a[mask], atol=1e-10)

    def test_preconditioner_quality_improves_with_fill(self, rng):
        a = diag_dominant(40, 0.15, 6)
        m = CSRMatrix.from_dense(a)
        b = rng.random(40)
        errs = []
        for k in range(3):
            f = ilu_csr(m, k)
            errs.append(np.linalg.norm(a @ f.solve(b) - b))
        assert errs[2] <= errs[0] + 1e-12

    def test_zero_pivot_raises(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        rows, cols = np.nonzero(a)
        m = CSRMatrix.from_coo(rows, cols, a[rows, cols], (2, 2))
        with pytest.raises(ZeroDivisionError):
            ilu_csr(m, 0)

    def test_reuse_pattern(self, rng):
        a = diag_dominant(20, 0.2, 7)
        m = CSRMatrix.from_dense(a)
        pat = ilu_symbolic(m.indptr, m.indices, 1)
        f1 = ilu_csr(m, 1)
        f2 = ilu_csr(m, fill_level=99, pattern=pat)  # pattern wins
        b = rng.random(20)
        assert np.allclose(f1.solve(b), f2.solve(b))

    def test_fp32_storage_close_and_smaller(self, rng):
        a = diag_dominant(20, 0.2, 8)
        m = CSRMatrix.from_dense(a)
        f64 = ilu_csr(m, 1)
        f32 = ilu_csr(m, 1, storage_dtype=np.float32)
        b = rng.random(20)
        assert f32.factor_bytes * 2 == f64.factor_bytes
        rel = (np.linalg.norm(f32.solve(b) - f64.solve(b))
               / np.linalg.norm(f64.solve(b)))
        assert rel < 1e-5
        # Arithmetic stays double: the result is float64.
        assert f32.solve(b).dtype == np.float64


class TestNumericBSR:
    def _bsr_from_mesh(self, mesh, bs, seed):
        from repro.sparse import assemble_bsr, block_structure_from_edges
        rng = np.random.default_rng(seed)
        st = block_structure_from_edges(mesh.num_vertices, mesh.edges)
        n, ne = mesh.num_vertices, mesh.num_edges
        diag = rng.standard_normal((n, bs, bs)) + 20 * np.eye(bs)
        return assemble_bsr(st, bs, diag,
                            off_ij=rng.standard_normal((ne, bs, bs)),
                            off_ji=rng.standard_normal((ne, bs, bs)))

    def test_full_fill_equals_direct(self, tiny_mesh, rng):
        a = self._bsr_from_mesh(tiny_mesh, 2, 0)
        f = ilu_bsr(a, tiny_mesh.num_vertices)
        b = rng.random(a.shape[0])
        assert np.allclose(a.to_csr() @ f.solve(b), b, atol=1e-8)

    def test_block_ilu0_good_preconditioner(self, tiny_mesh, rng):
        a = self._bsr_from_mesh(tiny_mesh, 3, 1)
        f = ilu_bsr(a, 0)
        b = rng.random(a.shape[0])
        x = f.solve(b)
        rel = np.linalg.norm(a.to_csr() @ x - b) / np.linalg.norm(b)
        assert rel < 0.5  # strong diagonal: ILU(0) is a decent inverse

    def test_fp32_storage(self, tiny_mesh, rng):
        a = self._bsr_from_mesh(tiny_mesh, 2, 2)
        f64 = ilu_bsr(a, 0)
        f32 = ilu_bsr(a, 0, storage_dtype=np.float32)
        assert f32.factor_bytes * 2 == f64.factor_bytes
        b = rng.random(a.shape[0])
        assert np.allclose(f32.solve(b), f64.solve(b), rtol=1e-4, atol=1e-5)

    def test_matches_scalar_ilu_when_bs1(self, rng):
        a = diag_dominant(18, 0.25, 9)
        m = CSRMatrix.from_dense(a)
        bsr1 = BSRMatrix(indptr=m.indptr, indices=m.indices,
                         data=m.data.reshape(-1, 1, 1), nbcols=18)
        b = rng.random(18)
        assert np.allclose(ilu_bsr(bsr1, 1).solve(b),
                           ilu_csr(m, 1).solve(b), atol=1e-12)
