"""Deduplicated BSR storage (bandwidth round 2).

Three contracts, each pinned at its honest strength:

* **round-trip** — ``dedup_blocks`` is a bitwise compaction: the pool
  gather reconstructs the dense value stream exactly, for any block
  data (property-based), including signed zeros and degenerate shapes;
* **kernel equivalence** — at float64 pool storage the deduped SpMV,
  triangular solves, and ILU application equal the retained dense-BSR
  oracles bitwise (the numpy paths run the *same* einsum/segment-sum
  over a bitwise-equal gather);
* **precision tiers** — fp32/fp16 *storage* rounds values once, so
  the error of every reduced tier must land under the Higham-style
  :func:`~repro.experiments.eqbounds.storage_roundoff_bound`, which
  pins it to the storage rounding rather than any kernel defect.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.euler import wing_problem
from repro.experiments.eqbounds import storage_roundoff_bound
from repro.kernels import capability
from repro.memory.trace import spmv_bsr_trace, spmv_dedup_bsr_trace
from repro.perfmodel.spmv_model import (spmv_dedup_traffic_bytes,
                                        spmv_traffic_bytes)
from repro.sparse.bsr import BSRMatrix
from repro.sparse.dedup import (DedupBSR, dedup_blocks, dedup_bsr,
                                widen_pool)
from repro.sparse.ilu import ilu_bsr, ilu_symbolic
from repro.sparse.precision import PrecisionPolicy

HAS_BACKEND = capability.available_backends() != ()


@pytest.fixture(scope="module")
def wing():
    """Tiny perturbed wing: Jacobian, ILU(1) factor, probe vectors."""
    prob = wing_problem(7, 5, 4)
    rng = np.random.default_rng(3)
    q = prob.initial.flat() + 0.02 * rng.standard_normal(
        prob.disc.num_unknowns)
    jac = prob.disc.shifted_jacobian(q, cfl=10.0)
    pat = ilu_symbolic(jac.indptr, jac.indices, 1)
    factor = ilu_bsr(jac, pattern=pat)
    x = rng.standard_normal(jac.shape[1])
    b = rng.standard_normal(jac.shape[0])
    return jac, factor, x, b


@st.composite
def block_data(draw):
    """(nnzb, bs, bs) block values drawn from a small vocabulary, so
    real repetition occurs with high probability."""
    bs = draw(st.integers(1, 3))
    nnzb = draw(st.integers(0, 40))
    vocab = draw(st.integers(1, 6))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    pool = rng.standard_normal((vocab, bs, bs))
    return pool[rng.integers(0, vocab, nnzb)]


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(data=block_data())
    def test_compact_expand_is_bitwise(self, data):
        pool, pidx = dedup_blocks(data)
        assert pidx.dtype == np.int32
        assert np.array_equal(pool[pidx], data)
        if pool.shape[0] == 0:
            return
        # The pool holds no duplicate block (else it isn't a pool).
        flat = pool.reshape(pool.shape[0], -1)
        keys = flat.view(np.dtype(
            (np.void, flat.dtype.itemsize * max(flat.shape[1], 1))))
        assert np.unique(keys.ravel()).size == pool.shape[0]

    def test_signed_zeros_stay_distinct(self):
        data = np.zeros((2, 2, 2))
        data[1] = -0.0
        pool, pidx = dedup_blocks(data)
        assert pool.shape[0] == 2          # bitwise keys: 0.0 != -0.0
        assert np.array_equal(pool[pidx].view(np.int64),
                              data.view(np.int64))

    def test_all_identical_blocks_collapse(self):
        data = np.broadcast_to(np.arange(4.0).reshape(2, 2),
                               (17, 2, 2)).copy()
        pool, pidx = dedup_blocks(data)
        assert pool.shape[0] == 1
        assert np.all(pidx == 0)

    def test_all_unique_blocks_pass_through(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((9, 2, 2))
        pool, pidx = dedup_blocks(data)
        assert pool.shape[0] == 9
        assert np.array_equal(pool[pidx], data)

    def test_empty(self):
        pool, pidx = dedup_blocks(np.empty((0, 3, 3)))
        assert pool.shape == (0, 3, 3)
        assert pidx.size == 0

    @settings(max_examples=30, deadline=None)
    @given(data=block_data())
    def test_matrix_round_trip(self, data):
        """dedup_bsr -> expand reconstructs the BSRMatrix bitwise."""
        nnzb, bs = data.shape[0], data.shape[1]
        n = max(nnzb, 1)
        indptr = np.linspace(0, nnzb, n + 1).astype(np.int64)
        indices = np.arange(nnzb, dtype=np.int64) % n
        a = BSRMatrix(indptr, indices, data, n)
        d = dedup_bsr(a)
        assert np.array_equal(d.expand().data, a.data)
        assert d.dedup_ratio >= 1.0 or nnzb == 0


class TestValidation:
    def test_pool_index_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            DedupBSR(np.array([0, 1]), np.array([0]),
                     np.zeros((1, 2, 2)), np.array([5]), 1)

    def test_pool_must_be_square_blocks(self):
        with pytest.raises(ValueError, match="pool must be"):
            DedupBSR(np.array([0, 1]), np.array([0]),
                     np.zeros((1, 2, 3)), np.array([0]), 1)

    def test_integer_pool_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            DedupBSR(np.array([0, 1]), np.array([0]),
                     np.zeros((1, 2, 2), dtype=np.int64),
                     np.array([0]), 1)

    def test_widen_pool_only_touches_fp16(self):
        p16 = np.ones((2, 2, 2), dtype=np.float16)
        assert widen_pool(p16).dtype == np.float32
        p64 = np.ones((2, 2, 2))
        assert widen_pool(p64) is p64


class TestKernelOracles:
    def test_spmv_bitwise_at_fp64(self, wing):
        jac, _factor, x, _b = wing
        d = dedup_bsr(jac)
        assert np.array_equal(d @ x, jac @ x)

    def test_ilu_solve_bitwise_at_fp64(self, wing):
        jac, factor, _x, b = wing
        df = factor.dedup_storage()
        assert np.array_equal(df.solve(b), factor.solve(b))
        assert df.dedup_ratio >= 1.0

    @pytest.mark.skipif(not HAS_BACKEND, reason="no compiled backend")
    def test_compiled_spmv_normwise(self, wing):
        """Compiled dedup SpMV: the dense block kernel plus one int32
        indirection, so it inherits the dense kernel's normwise bound."""
        jac, _factor, x, _b = wing
        d = dedup_bsr(jac)
        d.engine = "compiled"
        ref = jac @ x
        scale = max(1.0, float(np.abs(ref).max()))
        np.testing.assert_allclose(d @ x, ref, rtol=0.0,
                                   atol=1e-12 * scale)

    @pytest.mark.skipif(not HAS_BACKEND, reason="no compiled backend")
    def test_compiled_trisolve_normwise(self, wing):
        jac, factor, _x, b = wing
        df = factor.dedup_storage()
        df.engine = "compiled"
        ref = factor.solve(b)
        scale = max(1.0, float(np.abs(ref).max()))
        np.testing.assert_allclose(df.solve(b), ref, rtol=0.0,
                                   atol=1e-12 * scale)


class TestPrecisionTiers:
    def _abs_ax(self, jac, x):
        a_abs = BSRMatrix(jac.indptr, jac.indices, np.abs(jac.data),
                          jac.nbcols)
        return a_abs @ np.abs(x)

    def _row_nnz(self, jac):
        return np.repeat(np.diff(jac.indptr) * jac.bs, jac.bs)

    @pytest.mark.parametrize("dtype", [np.float32, np.float16])
    def test_spmv_under_storage_roundoff_bound(self, wing, dtype):
        jac, _factor, x, _b = wing
        d = dedup_bsr(jac, pool_dtype=dtype)
        err = np.abs(d @ x - jac @ x)
        bound = storage_roundoff_bound(self._abs_ax(jac, x),
                                       self._row_nnz(jac), dtype)
        assert np.all(err <= bound)

    def test_fp16_pool_is_storage_only(self, wing):
        """The fp16 pool never computes at fp16: expand() widens it
        and the matvec result stays a wide dtype."""
        jac, _factor, x, _b = wing
        d = dedup_bsr(jac, pool_dtype=np.float16)
        assert d.pool.dtype == np.float16
        assert d.expand().data.dtype == np.float32
        assert (d @ x).dtype in (np.dtype(np.float32),
                                 np.dtype(np.float64))

    def test_astype_pool_rounds_values_not_indices(self, wing):
        jac, _factor, _x, _b = wing
        d = dedup_bsr(jac)
        d32 = d.astype_pool(np.float32)
        assert np.array_equal(d32.pidx, d.pidx)
        assert np.array_equal(d32.indices, d.indices)
        assert np.array_equal(d32.pool, d.pool.astype(np.float32))

    @pytest.mark.parametrize("dtype", [np.float32, np.float16])
    def test_ilu_storage_error_scales_with_eps(self, wing, dtype):
        """Reduced-precision factor storage perturbs the solve by
        O(eps_storage) relative to the fp64 factor — not more."""
        jac, factor, _x, b = wing
        df = factor.dedup_storage(dtype)
        ref = factor.solve(b)
        err = np.abs(df.solve(b) - ref)
        scale = float(np.abs(ref).max())
        # Triangular solves amplify storage rounding by a modest
        # condition-dependent factor; 100x eps absorbs it while still
        # separating fp32 (~1e-7) from fp16 (~1e-3) storage cleanly.
        assert float(err.max()) <= 100 * np.finfo(dtype).eps * scale


class TestPrecisionPolicy:
    def test_named_tiers(self):
        p = PrecisionPolicy.named("fp64")
        assert p.is_default
        p32 = PrecisionPolicy.named("fp32")
        assert p32.krylov_dtype == np.float32
        assert p32.effective_pool_dtype == np.float32
        p16 = PrecisionPolicy.named("fp16-pool")
        assert p16.pool_dtype == np.float16
        assert p16.pool_compute_dtype == np.float32

    def test_named_passes_instances_through(self):
        p = PrecisionPolicy.named("fp32")
        assert PrecisionPolicy.named(p) is p

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown precision policy"):
            PrecisionPolicy.named("fp8")

    def test_fp16_compute_dtypes_rejected(self):
        with pytest.raises(ValueError, match="fp16 compute"):
            PrecisionPolicy("bad", np.float16, np.float64)
        with pytest.raises(ValueError):
            PrecisionPolicy("bad", np.float64, np.float16)


class TestTrafficAccounting:
    def test_dedup_model_prices_the_trade(self, wing):
        """The dedup stream only wins when pool reuse beats the extra
        int32 index: at ratio ~1 it must cost *more* than dense, and
        with a tiny pool it must cost less."""
        jac, _factor, _x, _b = wing
        nnz = jac.nnzb * jac.bs * jac.bs
        dense = spmv_traffic_bytes(jac.shape[0], nnz,
                                   block_size=jac.bs).total
        allu = spmv_dedup_traffic_bytes(jac.shape[0], nnz, jac.nnzb,
                                        block_size=jac.bs).total
        tiny = spmv_dedup_traffic_bytes(jac.shape[0], nnz, 2,
                                        block_size=jac.bs).total
        assert allu > dense > tiny

    def test_fp16_pool_shrinks_the_model(self, wing):
        jac, _factor, _x, _b = wing
        nnz = jac.nnzb * jac.bs * jac.bs
        d = dedup_bsr(jac)
        t64 = spmv_dedup_traffic_bytes(jac.shape[0], nnz, d.nuniq,
                                       block_size=jac.bs,
                                       pool_value_bytes=8)
        t16 = spmv_dedup_traffic_bytes(jac.shape[0], nnz, d.nuniq,
                                       block_size=jac.bs,
                                       pool_value_bytes=2)
        assert t16.matrix_bytes * 4 == t64.matrix_bytes
        assert t16.index_bytes == t64.index_bytes

    def test_dedup_trace_addresses_reuse_the_pool(self, wing):
        """A repeated block revisits the same pool addresses: the
        deduped trace touches at most nuniq * bs^2 distinct pool
        words, while the dense trace streams nnzb * bs^2."""
        jac, _factor, _x, _b = wing
        d = dedup_bsr(jac)
        dense_trace = spmv_bsr_trace(jac)
        dedup_trace = spmv_dedup_bsr_trace(d)
        # Identical record shape per block entry count is not required,
        # but both traces must be nonempty and strictly address-valued.
        assert dense_trace.size and dedup_trace.size
        assert np.unique(dedup_trace).size <= np.unique(dense_trace).size \
            + jac.nnzb + jac.nbrows + 1
