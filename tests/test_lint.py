"""reprolint: per-rule regressions, CLI behaviour, baseline ratchet.

Each rule is pinned by a violating/compliant fixture pair under
``tests/lint_fixtures/`` — the violating file must raise *exactly* its
rule (true positive) and the compliant file must lint clean (false
positive guard).
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (filter_findings, load_baseline, run_lint,
                        write_baseline)
from repro.lint.cli import main as lint_main
from repro.lint.registry import all_rules

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

RULES = ["R001", "R002", "R003", "R004", "R005", "R006",
         "R007", "R008", "R009"]


def lint_fixture(name, **kwargs):
    kwargs.setdefault("tests_dir", None)
    return run_lint([FIXTURES / name], **kwargs)


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", RULES)
    def test_violating_fixture_fires_only_its_rule(self, rule):
        findings = lint_fixture(f"{rule.lower()}_violating.py")
        assert findings, f"{rule} fixture raised nothing"
        assert {f.rule for f in findings} == {rule}

    @pytest.mark.parametrize("rule", RULES)
    def test_compliant_fixture_is_clean(self, rule):
        assert lint_fixture(f"{rule.lower()}_compliant.py") == []

    def test_r002_counts_all_bug_classes(self):
        """Dtype-blind constructors, fp64-scalar promotion, and fp16
        compute are separate findings (zeros, arange, float64*x,
        astype(f16)@x, += float16)."""
        findings = lint_fixture("r002_violating.py")
        assert len(findings) == 5
        half = [f for f in findings if "storage-only" in f.message]
        assert len(half) == 2

    def test_r005_counts_all_three_contracts(self):
        """None-default recorder + two clock reads + unseeded RNG."""
        findings = lint_fixture("r005_violating.py")
        assert len(findings) == 4

    def test_r005_worker_pragma_allows_clocks(self):
        """The same clocked kernel fires R005 under '# lint: kernel'
        and is clean under '# lint: worker' (forked workers must clock
        their own spans — the parent's recorder is unreachable)."""
        findings = lint_fixture("r005_worker_violating.py")
        assert {f.rule for f in findings} == {"R005"}
        assert len(findings) == 2          # both clock reads
        assert lint_fixture("r005_worker_compliant.py") == []

    def test_worker_modules_keep_other_kernel_rules(self, tmp_path):
        """'worker' is a kernel classification: R002/R003 still apply;
        only the R005 clock check is carved out."""
        mod = tmp_path / "workermod.py"
        mod.write_text(
            "# lint: worker (fixture)\n"
            "import time\n"
            "import numpy as np\n\n\n"
            "def kernel(x):\n"
            "    t0 = time.perf_counter()\n"
            "    out = np.zeros(x.size)\n"
            "    for i in range(x.size):\n"
            "        out[i] = x[i] + t0\n"
            "    return out\n")
        findings = run_lint([mod], tests_dir=None)
        assert {f.rule for f in findings} == {"R002", "R003"}

    def test_r007_counts_all_four_schema_rots(self):
        """Duplicate offset, out-of-range offset, coordinator-written-
        never-read, worker-read-never-written: one finding each."""
        findings = lint_fixture("r007_violating.py")
        assert len(findings) == 4
        assert any("reuses offset" in f.message for f in findings)
        assert any("outside the allocated table" in f.message
                   for f in findings)
        assert any("never read on any worker path" in f.message
                   for f in findings)
        assert any("consume an unset cell" in f.message for f in findings)

    def test_r008_counts_all_five_impurity_classes(self):
        """Global rebind, container mutation, RNG, clock, write-mode
        open — all in a helper defined *after* its caller, so the
        finding set also pins order-independent call resolution."""
        findings = lint_fixture("r008_violating.py")
        assert len(findings) == 5
        msgs = " | ".join(f.message for f in findings)
        assert "rebinds module-level '_COUNT'" in msgs
        assert "_CACHE" in msgs
        assert "unseeded randomness" in msgs
        assert "clock" in msgs
        assert "open(" in msgs
        assert all("worker entry" in f.message for f in findings)

    def test_r008_thread_target_is_a_worker_entry(self):
        """``Thread(target=...)`` marks its target exactly like
        ``Process(target=...)`` — the service dispatch loop runs under
        the same purity contract as forked workers."""
        findings = lint_fixture("r008_thread_violating.py")
        assert len(findings) == 2
        assert {f.rule for f in findings} == {"R008"}
        msgs = " | ".join(f.message for f in findings)
        assert "rebinds module-level '_SERVED'" in msgs
        assert "clock" in msgs

    def test_r008_thread_compliant_is_clean(self):
        """Coordinator-side bookkeeping around ``Thread(...)`` stays
        out of the worker partition; the pure loop raises nothing."""
        assert lint_fixture("r008_thread_compliant.py") == []

    def test_r009_flags_only_underived_indices(self):
        """Chunk-derived slice write passes; constant-index and
        captured-name writes are each flagged."""
        findings = lint_fixture("r009_violating.py")
        assert len(findings) == 2
        assert all("'OUT'" in f.message for f in findings)
        assert all("chunk arguments" in f.message for f in findings)

    def test_r006_counts_each_missing_declaration(self):
        """Non-dotted oracle path + missing __fallback__ + one
        undeclared public method are three separate findings."""
        findings = lint_fixture("r006_violating.py")
        assert len(findings) == 3
        assert any("__fallback__" in f.message for f in findings)
        assert any("trisolve" in f.message for f in findings)

    def test_r006_skips_unmarked_modules(self, tmp_path):
        """R006 only fires on '# lint: compiled' modules — an ordinary
        module exposing public callables with no __oracles__ is fine."""
        mod = tmp_path / "plainmod.py"
        mod.write_text("def helper(x):\n    return x\n")
        assert run_lint([mod], tests_dir=None) == []

    def test_findings_carry_location_and_fingerprint(self):
        (finding,) = lint_fixture("r004_violating.py")
        assert finding.path.endswith("r004_violating.py")
        assert finding.line > 0
        assert len(finding.fingerprint) == 16
        assert "add.at" in finding.message


class TestOracleCoverage:
    def make_project(self, tmp_path, test_body):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(textwrap.dedent("""\
            def interp_ref(x):
                return x


            def interp(x):
                return x
            """))
        tdir = tmp_path / "tests"
        tdir.mkdir()
        (tdir / "test_mod.py").write_text(test_body)
        return pkg, tdir

    def test_untested_pair_is_flagged(self, tmp_path):
        pkg, tdir = self.make_project(tmp_path, "def test_nothing():\n"
                                                "    assert True\n")
        (finding,) = run_lint([pkg], tests_dir=tdir)
        assert finding.rule == "R001"
        assert "interp_ref" in finding.message
        assert "equivalence test" in finding.message

    def test_tested_pair_is_clean(self, tmp_path):
        pkg, tdir = self.make_project(
            tmp_path,
            "from pkg.mod import interp, interp_ref\n\n\n"
            "def test_pair(x):\n    assert interp(x) == interp_ref(x)\n")
        assert run_lint([pkg], tests_dir=tdir) == []


class TestPragmas:
    def test_unknown_token_is_r000(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("# lint: lop-ok (typo)\nx = 1\n")
        findings = run_lint([f], tests_dir=None)
        assert [f.rule for f in findings] == ["R000"]
        assert "lop-ok" in findings[0].message

    def test_syntax_error_is_r000(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("def broken(:\n")
        findings = run_lint([f], tests_dir=None)
        assert [f.rule for f in findings] == ["R000"]


class TestFingerprints:
    def test_stable_under_line_moves(self, tmp_path):
        f = tmp_path / "mod.py"
        body = ("import numpy as np\n\n\n"
                "def acc(out, i, w):\n"
                "    np.add.at(out, i, w)\n")
        f.write_text(body)
        before = {x.fingerprint for x in run_lint([f], tests_dir=None)}
        f.write_text("# an unrelated comment\n\n" + body)
        after = {x.fingerprint for x in run_lint([f], tests_dir=None)}
        assert before == after != set()

    def test_repeated_idioms_stay_distinct(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("import numpy as np\n\n\n"
                     "def acc2(out, i, w):\n"
                     "    np.add.at(out, i, w)\n"
                     "    np.add.at(out, i, w)\n")
        findings = run_lint([f], tests_dir=None)
        assert len({x.fingerprint for x in findings}) == 2


class TestBaseline:
    def test_report_round_trips_through_loader(self, tmp_path):
        findings = lint_fixture("r002_violating.py")
        report = tmp_path / "report.json"
        rc = lint_main(["--format", "json", "--tests", "does-not-exist",
                        str(FIXTURES / "r002_violating.py")])
        assert rc == 1
        # Re-render the same findings as the CLI would have.
        from repro.lint.cli import render_json
        report.write_text(render_json(findings, 0))
        fps = load_baseline(report)
        assert fps == {f.fingerprint for f in findings}
        assert filter_findings(findings, fps) == []

    def test_write_then_load(self, tmp_path):
        findings = lint_fixture("r003_violating.py")
        bl = tmp_path / "baseline.json"
        write_baseline(bl, findings)
        assert load_baseline(bl) == {f.fingerprint for f in findings}

    def test_baseline_suppresses_via_cli(self, tmp_path, capsys):
        bl = tmp_path / "baseline.json"
        write_baseline(bl, lint_fixture("r004_violating.py"))
        rc = lint_main(["--tests", "does-not-exist", "--baseline", str(bl),
                        str(FIXTURES / "r004_violating.py")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "baseline-suppressed" in out

    def test_bad_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"neither": []}')
        rc = lint_main(["--baseline", str(bad), str(FIXTURES)])
        assert rc == 2


class TestCli:
    def test_src_tree_is_clean(self):
        """The merged tree carries no lint debt: ``python -m repro.lint
        src/`` exits 0 with no baseline."""
        env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src"],
            cwd=REPO, env=env, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "reprolint: clean" in proc.stdout

    def test_violations_exit_one(self, capsys):
        rc = lint_main(["--tests", "does-not-exist",
                        str(FIXTURES / "r001_violating.py")])
        assert rc == 1
        assert "R001" in capsys.readouterr().out

    def test_json_format_parses(self, capsys):
        rc = lint_main(["--format", "json", "--tests", "does-not-exist",
                        str(FIXTURES / "r005_violating.py")])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 2
        assert doc["counts"] == {"R005": 4}
        assert doc["cache"]["enabled"] is False

    def test_select_restricts_rules(self, capsys):
        rc = lint_main(["--select", "R002", "--tests", "does-not-exist",
                        str(FIXTURES / "r005_violating.py")])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_registry_has_nine_rules(self):
        assert [r.id for r in all_rules()] == RULES

    def test_select_unknown_rule_exits_two(self, capsys):
        rc = lint_main(["--select", "R042,R002",
                        str(FIXTURES / "r002_violating.py")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown rule id" in err
        assert "R042" in err
        assert "R002" in err          # the known list is spelled out

    def test_select_known_rules_still_run(self, capsys):
        rc = lint_main(["--select", "R004", "--tests", "does-not-exist",
                        str(FIXTURES / "r004_violating.py")])
        assert rc == 1
        assert "R004" in capsys.readouterr().out


class TestTestCollection:
    def test_unparsable_test_file_is_r000(self, tmp_path):
        from repro.lint.engine import collect_test_names
        tdir = tmp_path / "tests"
        tdir.mkdir()
        (tdir / "test_ok.py").write_text("def test_a():\n"
                                         "    assert helper() == 1\n")
        (tdir / "test_broken.py").write_text("def test_b(:\n")
        names, findings = collect_test_names(tdir)
        assert "helper" in names
        assert len(findings) == 1
        assert findings[0].rule == "R000"
        assert "does not parse" in findings[0].message
        assert findings[0].path.endswith("test_broken.py")

    def test_unreadable_test_file_is_r000(self, tmp_path):
        from repro.lint.engine import collect_test_names
        tdir = tmp_path / "tests"
        tdir.mkdir()
        bad = tdir / "test_bad.py"
        bad.write_bytes(b"\xff\xfe broken bytes \xff")
        names, findings = collect_test_names(tdir)
        assert len(findings) == 1
        assert findings[0].rule == "R000"
        assert "unreadable" in findings[0].message

    def test_collection_findings_surface_in_run(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("def f(x):\n    return x\n")
        tdir = tmp_path / "tests"
        tdir.mkdir()
        (tdir / "test_broken.py").write_text("def test_b(:\n")
        findings = run_lint([pkg], tests_dir=tdir)
        assert [f.rule for f in findings] == ["R000"]


class TestCacheAndJobs:
    def test_cache_second_run_hits(self, tmp_path):
        from repro.lint import run_lint_ex
        cdir = tmp_path / "cache"
        paths = [FIXTURES / "r002_violating.py",
                 FIXTURES / "r003_violating.py"]
        first = run_lint_ex(paths, tests_dir=None, cache_dir=cdir)
        assert first.cache_stats["enabled"] is True
        assert first.cache_stats["misses"] == 2
        assert first.cache_stats["hits"] == 0
        second = run_lint_ex(paths, tests_dir=None, cache_dir=cdir)
        assert second.cache_stats["hits"] == 2
        assert second.cache_stats["misses"] == 0
        assert [f.fingerprint for f in first.findings] \
            == [f.fingerprint for f in second.findings]

    def test_cache_invalidates_on_content_change(self, tmp_path):
        from repro.lint import run_lint_ex
        cdir = tmp_path / "cache"
        mod = tmp_path / "mod.py"
        mod.write_text("import numpy as np\n\n\n"
                       "def acc(out, i, w):\n"
                       "    np.add.at(out, i, w)\n")
        run_lint_ex([mod], tests_dir=None, cache_dir=cdir)
        mod.write_text("def acc(out, i, w):\n    return out\n")
        res = run_lint_ex([mod], tests_dir=None, cache_dir=cdir)
        assert res.cache_stats["misses"] == 1
        assert res.findings == []

    def test_project_rules_fire_from_cached_facts(self, tmp_path):
        """R007/R008 run in finalize over *cached* facts: a fully
        cache-hit second run must reproduce interprocedural findings."""
        from repro.lint import run_lint_ex
        cdir = tmp_path / "cache"
        path = [FIXTURES / "r008_violating.py"]
        first = run_lint_ex(path, tests_dir=None, cache_dir=cdir)
        second = run_lint_ex(path, tests_dir=None, cache_dir=cdir)
        assert second.cache_stats["hits"] == 1
        assert {f.rule for f in second.findings} == {"R008"}
        assert [f.fingerprint for f in first.findings] \
            == [f.fingerprint for f in second.findings]

    def test_cache_keyed_by_select(self, tmp_path):
        """A cached R002-only analysis must not satisfy a full run."""
        from repro.lint import run_lint_ex
        cdir = tmp_path / "cache"
        path = [FIXTURES / "r005_violating.py"]
        run_lint_ex(path, tests_dir=None, cache_dir=cdir,
                    select={"R002"})
        full = run_lint_ex(path, tests_dir=None, cache_dir=cdir)
        assert full.cache_stats["misses"] == 1
        assert {f.rule for f in full.findings} == {"R005"}

    def test_parallel_jobs_match_serial(self):
        from repro.lint import run_lint_ex
        paths = sorted(FIXTURES.glob("r0*_violating.py"))
        serial = run_lint_ex(paths, tests_dir=None, jobs=1)
        threaded = run_lint_ex(paths, tests_dir=None, jobs=4)
        assert [f.fingerprint for f in serial.findings] \
            == [f.fingerprint for f in threaded.findings]

    def test_json_reports_cache_stats(self, tmp_path, capsys):
        rc = lint_main(["--format", "json", "--tests", "does-not-exist",
                        "--cache", str(tmp_path / "c"),
                        str(FIXTURES / "r003_violating.py")])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["cache"]["enabled"] is True
        assert doc["cache"]["misses"] == 1
        assert "analysis_version" in doc["cache"]
