"""Odds-and-ends coverage: error branches and small accessors that the
main suites exercise only implicitly."""

import numpy as np
import pytest

from repro.memory import CacheConfig
from repro.memory.hierarchy import HierarchyCounters
from repro.perfmodel import ORIGIN2000_R10K
from repro.perfmodel.roofline import roofline_curve
from repro.solvers import gmres
from repro.sparse import BSRMatrix, CSRMatrix


class TestHierarchyCounters:
    def test_rates(self):
        c = HierarchyCounters(accesses=1000, l1_misses=100, l2_misses=20,
                              tlb_misses=5)
        assert c.l1_miss_rate == pytest.approx(0.1)
        assert c.l2_miss_rate == pytest.approx(0.2)
        assert c.row()["tlb_misses"] == 5

    def test_zero_division_guarded(self):
        c = HierarchyCounters(0, 0, 0, 0)
        assert c.l1_miss_rate == 0
        assert c.l2_miss_rate == 0


class TestRooflineCurve:
    def test_custom_intensities(self):
        xs = np.array([0.01, 1.0, 100.0])
        ix, perf = roofline_curve(ORIGIN2000_R10K, xs)
        assert np.array_equal(ix, xs)
        assert perf[0] == pytest.approx(0.01 * ORIGIN2000_R10K.stream_bw)
        assert perf[-1] == ORIGIN2000_R10K.peak_flops


class TestSparseEdgeCases:
    def test_empty_coo(self):
        m = CSRMatrix.from_coo(np.array([], dtype=int),
                               np.array([], dtype=int),
                               np.array([]), (3, 3))
        assert m.nnz == 0
        assert np.allclose(m @ np.ones(3), 0)

    def test_bsr_mismatched_structure_rejected(self):
        with pytest.raises(ValueError):
            BSRMatrix(indptr=np.array([0, 2]), indices=np.array([0]),
                      data=np.ones((1, 2, 2)), nbcols=1)

    def test_csr_row_access(self):
        m = CSRMatrix.from_dense(np.array([[1.0, 0.0], [2.0, 3.0]]))
        cols, vals = m.row(1)
        assert cols.tolist() == [0, 1]
        assert vals.tolist() == [2.0, 3.0]

    def test_matmul_operator(self):
        m = CSRMatrix.eye(3, 2.0)
        assert np.allclose(m @ np.ones(3), 2.0)


class TestGMRESEdgeCases:
    def test_maxiter_zero_returns_initial(self):
        a = np.eye(4) * 2
        b = np.ones(4)
        res = gmres(a, b, maxiter=0)
        assert not res.converged
        assert res.iterations == 0
        assert np.allclose(res.x, 0)

    def test_singular_consistent_system(self):
        """Happy breakdown: GMRES finds the minimal-residual solution of
        a consistent singular system."""
        a = np.diag([1.0, 2.0, 0.0])
        b = np.array([1.0, 2.0, 0.0])
        res = gmres(a, b, rtol=1e-12, maxiter=10)
        assert np.allclose(a @ res.x, b, atol=1e-9)


class TestCacheConfigProps:
    def test_words(self):
        c = CacheConfig("t", 4096, 64, 2)
        assert c.capacity_words == 512
        assert c.line_words == 8

    def test_counters_api(self):
        from repro.memory import simulate_trace
        c = simulate_trace(np.array([0, 8, 16]), CacheConfig("t", 256, 32, 1))
        assert c.accesses == 3
        assert c.hits == 2


class TestStructureHelpers:
    def test_edge_not_in_list_raises(self, tiny_mesh):
        from repro.mesh.edges import tet_edge_indices
        bad_edges = tiny_mesh.edges[:-5]   # drop some edges
        with pytest.raises(ValueError):
            tet_edge_indices(tiny_mesh.tets, bad_edges,
                             tiny_mesh.num_vertices)

    def test_block_structure_rejects_self_duplicates(self):
        from repro.sparse import block_structure_from_edges
        with pytest.raises(ValueError):
            block_structure_from_edges(4, np.array([[0, 1], [1, 0]]))


class TestScaledMachineEdge:
    def test_scale_one_is_identityish(self):
        s = ORIGIN2000_R10K.scaled_caches(1)
        assert s.l2.capacity_bytes == ORIGIN2000_R10K.l2.capacity_bytes
        assert s.tlb.page_bytes == ORIGIN2000_R10K.tlb.page_bytes

    def test_huge_scale_floors(self):
        s = ORIGIN2000_R10K.scaled_caches(1e9)
        assert s.l1.capacity_bytes >= s.l1.line_bytes * s.l1.associativity
        assert s.tlb.page_bytes >= 256
