"""Intra-rank thread teams: chunking, determinism, and the hybrid knob.

The contract under test (see :mod:`repro.parallel.threads`): output
depends on the *thread count* only, never on scheduling — chunks are
fixed contiguous ranges and combiners consume results in chunk order.
Row-disjoint kernels (SpMV, trisolve, rank matvec) are bitwise
identical for any thread count; the flux scatter re-associates
per-vertex sums at chunk boundaries and is normwise-equivalent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NKSSolver, PreconditionerConfig, SolverConfig
from repro.euler import wing_problem
from repro.parallel import (ProcPool, SPMDLayout, distributed_matvec,
                            distributed_residual)
from repro.parallel.threads import chunk_ranges, resolve_threads, run_chunks
from repro.partition import kway_partition
from repro.precond.asm import ASMConfig
from repro.sparse.ilu import ilu_bsr, ilu_csr


@pytest.fixture(scope="module")
def wing():
    prob = wing_problem(9, 7, 5)
    labels = kway_partition(prob.mesh.vertex_graph(), 4, seed=0)
    layout = SPMDLayout.build(prob.mesh.edges, labels)
    rng = np.random.default_rng(7)
    q = prob.initial.flat() + 0.05 * rng.standard_normal(
        prob.disc.num_unknowns)
    jac = prob.disc.shifted_jacobian(q, cfl=40.0)
    return prob, layout, q, jac


class TestChunkRanges:
    def test_covers_contiguously(self):
        for n in (0, 1, 5, 17, 100):
            for k in (1, 2, 3, 7, 200):
                chunks = chunk_ranges(n, k)
                flat = [i for lo, hi in chunks for i in range(lo, hi)]
                assert flat == list(range(n))

    def test_balanced_and_never_empty(self):
        chunks = chunk_ranges(10, 4)
        sizes = [hi - lo for lo, hi in chunks]
        assert sizes == [3, 3, 2, 2]
        assert all(s > 0 for lo_hi in [chunk_ranges(3, 8)]
                   for s in [hi - lo for lo, hi in lo_hi])

    def test_at_most_nchunks(self):
        assert len(chunk_ranges(3, 8)) == 3
        assert len(chunk_ranges(0, 4)) == 0

    def test_resolve_threads(self):
        assert resolve_threads(None) == 1
        assert resolve_threads(3) == 3
        with pytest.raises(ValueError):
            resolve_threads(0)


class TestRunChunks:
    def test_results_in_chunk_order(self):
        chunks = chunk_ranges(20, 4)
        got = run_chunks(lambda lo, hi: (lo, hi), chunks, 4)
        assert got == chunks

    def test_single_thread_is_inline(self):
        calls = []
        run_chunks(lambda lo, hi: calls.append((lo, hi)),
                   chunk_ranges(10, 1), 1)
        assert calls == [(0, 10)]

    def test_exceptions_propagate(self):
        def boom(lo, hi):
            raise ValueError("chunk failed")
        with pytest.raises(ValueError, match="chunk failed"):
            run_chunks(boom, chunk_ranges(8, 2), 2)


class TestThreadedKernelEquivalence:
    def test_residual_normwise(self, wing):
        prob, layout, q, _ = wing
        f1 = distributed_residual(prob.disc, layout, q, threads=1)
        for t in (2, 3):
            ft = distributed_residual(prob.disc, layout, q, threads=t)
            # Chunk-boundary re-association only: normwise tiny.
            np.testing.assert_allclose(ft, f1, rtol=0, atol=1e-12)

    def test_single_thread_is_the_oracle(self, wing):
        prob, layout, q, _ = wing
        f_default = distributed_residual(prob.disc, layout, q)
        f_t1 = distributed_residual(prob.disc, layout, q, threads=1)
        assert np.array_equal(f_default, f_t1)

    def test_matvec_bitwise(self, wing):
        prob, layout, q, jac = wing
        rng = np.random.default_rng(3)
        x = rng.standard_normal(jac.shape[1])
        y1 = distributed_matvec(jac, layout, x, threads=1)
        for t in (2, 5):
            yt = distributed_matvec(jac, layout, x, threads=t)
            assert np.array_equal(yt, y1)

    def test_bsr_csr_matvec_bitwise(self, wing):
        _, _, q, jac = wing
        rng = np.random.default_rng(4)
        x = rng.standard_normal(jac.shape[1])
        y1 = jac.matvec(x)
        jt = jac.copy()
        jt.threads = 3
        assert np.array_equal(jt.matvec(x), y1)
        csr = jac.to_csr()
        ct = csr.copy()
        ct.threads = 3
        assert np.array_equal(ct.matvec(x), csr.matvec(x))

    def test_threads_survive_matrix_derivations(self, wing):
        _, _, _, jac = wing
        jt = jac.copy()
        jt.threads = 2
        assert jt.to_csr().threads == 2
        assert jt.astype(np.float64).threads == 2
        sub = jt.submatrix(np.arange(min(8, jt.nbrows), dtype=np.int64))
        assert sub.threads == 2

    def test_trisolve_bitwise(self, wing):
        _, _, q, jac = wing
        rng = np.random.default_rng(5)
        b = rng.standard_normal(jac.shape[0])
        f1 = ilu_bsr(jac, 1)
        f3 = ilu_bsr(jac, 1, threads=3)
        assert np.array_equal(f3.solve(b), f1.solve(b))
        csr = jac.to_csr()
        g1 = ilu_csr(csr, 1)
        g3 = ilu_csr(csr, 1, threads=3)
        assert np.array_equal(g3.solve(b), g1.solve(b))

    def test_f32_dtype_preserved(self, wing):
        prob, layout, q, _ = wing
        q32 = q.astype(np.float32)
        f = distributed_residual(prob.disc, layout, q32, threads=2)
        assert f.dtype == np.float32


class TestSeqProcThreadParity:
    def test_seq_equals_proc_for_any_thread_count(self, wing):
        prob, layout, q, jac = wing
        rng = np.random.default_rng(6)
        x = rng.standard_normal(jac.shape[1])
        with ProcPool(layout, prob.disc, nworkers=2, threads=2):
            for t in (1, 2, 3):
                fs = distributed_residual(prob.disc, layout, q,
                                          executor="seq", threads=t)
                fp = distributed_residual(prob.disc, layout, q,
                                          executor="proc", threads=t)
                assert np.array_equal(fs, fp)
                ys = distributed_matvec(jac, layout, x,
                                        executor="seq", threads=t)
                yp = distributed_matvec(jac, layout, x,
                                        executor="proc", threads=t)
                assert np.array_equal(ys, yp)

    def test_pool_default_threads_used(self, wing):
        prob, layout, q, _ = wing
        with ProcPool(layout, prob.disc, nworkers=2, threads=3) as pool:
            # threads=None -> the pool default (3); must equal seq(3).
            fp = pool.residual(q)
            fs = distributed_residual(prob.disc, layout, q,
                                      executor="seq", threads=3)
            assert np.array_equal(fp, fs)


class TestConfigPlumbing:
    def test_solver_config_validates_threads(self):
        with pytest.raises(ValueError, match="threads"):
            SolverConfig(threads=0)

    def test_asm_config_validates_threads(self):
        with pytest.raises(ValueError, match="threads"):
            ASMConfig(threads=0)

    def test_driver_solves_with_threads(self):
        prob = wing_problem(8, 6, 5)
        q0 = prob.initial.flat()

        def run(threads):
            cfg = SolverConfig(max_steps=3,
                               precond=PreconditionerConfig(nparts=4),
                               executor="seq", threads=threads)
            return NKSSolver(prob.disc, cfg).solve(q0)

        r1 = run(1)
        r2 = run(2)
        h1 = np.array([s.fnorm for s in r1.steps])
        h2 = np.array([s.fnorm for s in r2.steps])
        # Threaded flux re-associates sums, so trajectories are
        # normwise-equal, not bitwise.
        assert h1.size == h2.size
        np.testing.assert_allclose(h2, h1, rtol=1e-6)
