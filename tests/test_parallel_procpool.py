"""The process-pool SPMD backend: 'proc' must equal 'seq' bit for bit.

The sequential rank loop is the oracle (itself validated against the
global kernels in test_parallel_spmd.py); the worker pool runs the
*same* rank kernels over shared memory, so every payload is an exact
copy and equality is bitwise, not approximate — across dtypes,
including float32 ghost payloads.

Also covered: the deterministic pairwise-tree reduction, matrix
rebroadcast, worker-side telemetry shards, crash handling, and
shared-memory cleanup.
"""

import multiprocessing as mp
import os
import pathlib
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PreconditionerConfig, SolverConfig
from repro.core.driver import NKSSolver
from repro.euler import wing_problem
from repro.parallel import (GhostExchange, ProcPool, ProcPoolError,
                            SPMDLayout, distributed_dot, distributed_matvec,
                            distributed_residual, tree_reduce_sum)
from repro.partition import kway_partition
from repro.sparse.dedup import dedup_bsr
from repro.telemetry import TraceRecorder

_REPO_ROOT = str(pathlib.Path(__file__).resolve().parent.parent)


@pytest.fixture(scope="module")
def setup():
    prob = wing_problem(9, 7, 5)
    labels = kway_partition(prob.mesh.vertex_graph(), 6, seed=0)
    layout = SPMDLayout.build(prob.mesh.edges, labels)
    rng = np.random.default_rng(0)
    q = prob.initial.flat() + 0.05 * rng.standard_normal(
        prob.disc.num_unknowns)
    return prob, labels, layout, q


@pytest.fixture(scope="module")
def pool(setup):
    prob, _labels, layout, _q = setup
    # 3 workers over 6 ranks: uneven round-robin mapping on purpose.
    with ProcPool(layout, prob.disc, nworkers=3) as p:
        yield p


class TestBitwiseEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), f32=st.booleans())
    def test_residual(self, setup, pool, seed, f32):
        prob, _, layout, q = setup
        rng = np.random.default_rng(seed)
        qq = q + 0.01 * rng.standard_normal(q.size)
        if f32:
            qq = qq.astype(np.float32)
        f_seq = distributed_residual(prob.disc, layout, qq, executor="seq")
        f_proc = distributed_residual(prob.disc, layout, qq,
                                      executor="proc")
        assert f_proc.dtype == f_seq.dtype == qq.dtype
        assert np.array_equal(f_seq, f_proc)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), f32=st.booleans())
    def test_matvec(self, setup, pool, seed, f32):
        prob, _, layout, q = setup
        a = prob.disc.assemble_jacobian(q)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(q.size)
        if f32:
            x = x.astype(np.float32)
        y_seq = distributed_matvec(a, layout, x, executor="seq")
        y_proc = distributed_matvec(a, layout, x, executor="proc")
        assert y_proc.dtype == y_seq.dtype
        assert np.array_equal(y_seq, y_proc)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000),
           pool_dtype=st.sampled_from(["f64", "f32", "f16"]))
    def test_matvec_dedup(self, setup, pool, seed, pool_dtype):
        """Deduplicated matrices ship as [pool|pidx] segments; workers
        must reproduce the seq rank loop bitwise at every pool storage
        tier (fp16 included — widened identically on both sides)."""
        prob, _, layout, q = setup
        a = prob.disc.assemble_jacobian(q)
        dt = {"f64": np.float64, "f32": np.float32,
              "f16": np.float16}[pool_dtype]
        d = dedup_bsr(a, pool_dtype=dt)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(q.size)
        y_seq = distributed_matvec(d, layout, x, executor="seq")
        y_proc = distributed_matvec(d, layout, x, executor="proc")
        assert y_proc.dtype == y_seq.dtype
        assert np.array_equal(y_seq, y_proc)
        if dt is np.float64:
            # fp64 pool: the dedup form is bitwise the dense matvec.
            assert np.array_equal(
                y_seq, distributed_matvec(a, layout, x, executor="seq"))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_dot(self, setup, pool, seed):
        prob, _, layout, q = setup
        nc = prob.disc.ncomp
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(q.size)
        y = rng.standard_normal(q.size)
        d_seq = distributed_dot(layout, x, y, nc, executor="seq")
        d_proc = distributed_dot(layout, x, y, nc, executor="proc")
        assert d_seq == d_proc      # exact: same partials, same tree

    def test_residual_matches_global_kernel(self, setup, pool):
        """proc == seq == the plain in-process first-order residual."""
        prob, _, layout, q = setup
        f_proc = distributed_residual(prob.disc, layout, q,
                                      executor="proc")
        assert np.array_equal(
            f_proc, prob.disc.residual(q, second_order=False))


class TestTreeReduction:
    def test_fixed_pairwise_order(self):
        vals = [0.1, 0.2, 0.3, 0.4, 0.5]
        # ((a+b) + (c+d)) + e — the fixed left-to-right pairwise tree.
        assert tree_reduce_sum(vals) == (((0.1 + 0.2) + (0.3 + 0.4)) + 0.5)

    def test_singleton_and_empty(self):
        assert tree_reduce_sum([7.25]) == 7.25
        assert tree_reduce_sum([]) == 0.0

    def test_dot_is_deterministic(self, setup):
        prob, _, layout, q = setup
        nc = prob.disc.ncomp
        rng = np.random.default_rng(3)
        x = rng.standard_normal(q.size)
        y = rng.standard_normal(q.size)
        first = distributed_dot(layout, x, y, nc)
        assert all(distributed_dot(layout, x, y, nc) == first
                   for _ in range(5))

    def test_dot_uses_tree_not_np_sum(self, setup):
        """The reduction is the pairwise tree over per-rank partials."""
        prob, _, layout, q = setup
        nc = prob.disc.ncomp
        rng = np.random.default_rng(4)
        x = rng.standard_normal(q.size)
        y = rng.standard_normal(q.size)
        x2, y2 = x.reshape(-1, nc), y.reshape(-1, nc)
        partials = [float(np.sum(x2[rd.owned] * y2[rd.owned]))
                    for rd in layout.ranks]
        assert distributed_dot(layout, x, y, nc) == \
            tree_reduce_sum(partials)


class TestMatrixRebroadcast:
    def test_updated_matrix_values_propagate(self, setup, pool):
        prob, _, layout, q = setup
        rng = np.random.default_rng(11)
        x = rng.standard_normal(q.size)
        a1 = prob.disc.assemble_jacobian(q)
        y1 = distributed_matvec(a1, layout, x, executor="proc")
        # New values, same pattern: the token must invalidate the
        # workers' cached gather copies.
        a2 = prob.disc.assemble_jacobian(
            q + 0.1 * rng.standard_normal(q.size))
        y2_seq = distributed_matvec(a2, layout, x, executor="seq")
        y2 = distributed_matvec(a2, layout, x, executor="proc")
        assert np.array_equal(y2, y2_seq)
        assert not np.array_equal(y1, y2)
        # Rebroadcasting the same object is a no-op (cached by token).
        assert np.array_equal(
            distributed_matvec(a2, layout, x, executor="proc"), y2_seq)


class TestWorkerTelemetry:
    def test_spans_recorded_inside_workers(self, setup):
        prob, labels, layout, q = setup
        with ProcPool(layout, prob.disc, nworkers=3) as p:
            rec = TraceRecorder()
            distributed_residual(prob.disc, layout, q, recorder=rec,
                                 executor="proc")
            a = prob.disc.assemble_jacobian(q)
            distributed_matvec(a, layout, q, recorder=rec,
                               executor="proc")
            distributed_dot(layout, q, q, prob.disc.ncomp, recorder=rec,
                            executor="proc")
            # Parent-side envelopes exist already; worker shards only
            # arrive on collect().
            assert rec.phase_calls("flux", rank=1) == 0
            p.collect(rec)
            # One per-rank flux/matvec span, clocked inside the worker.
            for rd in layout.ranks:
                assert rec.phase_calls("flux", rank=rd.rank) == 1
                assert rec.phase_calls("matvec", rank=rd.rank) == 1
                assert rec.phase_calls("ghost_exchange",
                                       rank=rd.rank) == 2
            # Implicit-sync waits: the slowest rank waits zero, the
            # others wait the measured gap — all finite, at least one
            # recorded per phase.
            assert rec.wait_seconds("flux") >= 0.0
            # Worker-side ghost traffic counters match the plan: one
            # recorded exchange per op (residual + matvec).
            ex = GhostExchange(layout, prob.disc.ncomp)
            assert rec.counter("messages") == 2 * ex.pair_count
            assert rec.counter("bytes") == 2 * ex.ghost_rows * \
                prob.disc.ncomp * 8
            # collect() resets the shards: a second collect adds nothing.
            before = rec.phase_calls("flux", rank=0)
            p.collect(rec)
            assert rec.phase_calls("flux", rank=0) == before

    def test_null_recorder_records_nothing(self, setup):
        prob, _, layout, q = setup
        with ProcPool(layout, prob.disc, nworkers=2) as p:
            distributed_residual(prob.disc, layout, q, executor="proc")
            rec = TraceRecorder()
            p.collect(rec)
            assert rec.phases() == []


class TestExchangeProcMode:
    def test_refresh_raises_in_proc_mode(self, setup):
        prob, _, layout, _ = setup
        ex = GhostExchange(layout, prob.disc.ncomp, executor="proc")
        with pytest.raises(RuntimeError, match="proc"):
            ex.refresh([np.zeros((rd.n_local, prob.disc.ncomp))
                        for rd in layout.ranks])

    def test_account_refresh_counts_plan_traffic(self, setup):
        prob, _, layout, _ = setup
        ex = GhostExchange(layout, prob.disc.ncomp, executor="proc")
        ex.account_refresh(8)
        assert ex.messages == ex.pair_count
        assert ex.bytes_moved == ex.ghost_rows * prob.disc.ncomp * 8
        # Booked traffic equals what the seq refresh actually moves.
        ex2 = GhostExchange(layout, prob.disc.ncomp)
        local = [np.zeros((rd.n_local, prob.disc.ncomp))
                 for rd in layout.ranks]
        ex2.refresh(local)
        assert (ex2.messages, ex2.bytes_moved) == \
            (ex.messages, ex.bytes_moved)


class TestLifecycle:
    def test_shm_unlinked_on_context_exit(self, setup):
        prob, _labels, layout, q = setup
        with ProcPool(layout, prob.disc, nworkers=2) as p:
            name = p.shm_name
            distributed_residual(prob.disc, layout, q, executor="proc")
            a = prob.disc.assemble_jacobian(q)
            distributed_matvec(a, layout, q, executor="proc")
            mat_name = p.mat_shm_name
            assert mat_name is not None
        assert p.closed
        for seg_name in (name, mat_name):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=seg_name)

    def test_ops_raise_after_close(self, setup):
        prob, _labels, layout, q = setup
        p = ProcPool(layout, prob.disc, nworkers=2)
        p.close()
        p.close()                      # idempotent
        with pytest.raises(ProcPoolError, match="closed"):
            p.residual(q)
        with pytest.raises(ValueError):
            # layout.pool was detached by close(): executor="proc"
            # without a live pool must be rejected, not deadlock.
            distributed_residual(prob.disc, layout, q, executor="proc")

    def test_worker_crash_raises_and_close_is_clean(self, setup):
        prob, _labels, layout, q = setup
        p = ProcPool(layout, prob.disc, nworkers=2, timeout=2.0)
        name = p.shm_name
        victim = p._procs[0]
        victim.terminate()
        victim.join()
        with pytest.raises(ProcPoolError, match="spmd-worker-0"):
            p.residual(q)
        assert p.broken
        p.close()                      # must not hang or raise
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        # The layout is reusable afterwards with a fresh pool.
        with ProcPool(layout, prob.disc, nworkers=2):
            f = distributed_residual(prob.disc, layout, q,
                                     executor="proc")
        assert np.array_equal(
            f, distributed_residual(prob.disc, layout, q, executor="seq"))


class TestDriverIntegration:
    def test_solver_proc_bitwise_equals_seq(self):
        prob = wing_problem(8, 6, 5)
        q0 = prob.initial.flat()

        def run(executor, nworkers=None):
            cfg = SolverConfig(max_steps=3,
                               precond=PreconditionerConfig(nparts=4),
                               executor=executor, nworkers=nworkers)
            return NKSSolver(prob.disc, cfg).solve(q0)

        r_seq = run("seq")
        r_proc = run("proc", nworkers=2)
        assert np.array_equal(r_seq.final_state, r_proc.final_state)
        assert ([s.fnorm for s in r_seq.steps]
                == [s.fnorm for s in r_proc.steps])
        assert (r_seq.total_linear_iterations
                == r_proc.total_linear_iterations)

    def test_solver_recorder_gets_worker_spans(self):
        """An instrumented proc-executor solve surfaces the phase spans
        clocked inside the worker processes, per rank."""
        prob = wing_problem(8, 6, 5)
        rec = TraceRecorder()
        cfg = SolverConfig(max_steps=3,
                           precond=PreconditionerConfig(nparts=4),
                           executor="proc", nworkers=2)
        NKSSolver(prob.disc, cfg, recorder=rec).solve(prob.initial.flat())
        # The Krylov matvecs and their ghost exchanges run in the pool
        # (the second-order residual stays in-process), so their spans
        # carry every SPMD rank, clocked by the owning worker.
        for phase in ("matvec", "ghost_exchange"):
            assert rec.phase_seconds(phase) > 0.0
            assert rec.ranks(phase) == [0, 1, 2, 3]


class TestEdgeCases:
    """Worker/thread counts at and past the host's limits must either
    work (oversubscription: the OS time-slices) or raise a clear
    ProcPoolError — never silently misbehave."""

    def test_nworkers_zero_raises(self, setup):
        prob, _, layout, q = setup
        with pytest.raises(ProcPoolError, match="nworkers"):
            ProcPool(layout, prob.disc, nworkers=0)

    def test_threads_zero_raises(self, setup):
        prob, _, layout, q = setup
        with pytest.raises(ProcPoolError, match="threads"):
            ProcPool(layout, prob.disc, nworkers=2, threads=0)

    def test_nworkers_beyond_cpu_count(self, setup):
        """Oversubscription past os.cpu_count() works and stays exact."""
        prob, _, layout, q = setup
        n = min((os.cpu_count() or 1) + 2, layout.nranks)
        with ProcPool(layout, prob.disc, nworkers=n) as pool:
            assert pool.nworkers == n
            f = pool.residual(q)
        assert np.array_equal(
            f, distributed_residual(prob.disc, layout, q, executor="seq"))

    def test_nworkers_beyond_nranks_clamps(self, setup):
        """More workers than ranks would idle; the pool clamps (the
        documented behaviour) and every worker owns >= 1 rank."""
        prob, _, layout, q = setup
        with ProcPool(layout, prob.disc,
                      nworkers=layout.nranks + 5) as pool:
            assert pool.nworkers == layout.nranks
            assert all(len(r) >= 1 for r in pool._worker_ranks)
            f = pool.residual(q)
        assert np.array_equal(
            f, distributed_residual(prob.disc, layout, q, executor="seq"))

    def test_threads_times_workers_beyond_cpu_count(self, setup):
        """threads x workers > cpu_count oversubscribes but stays
        bitwise-equal to the sequential leg at the same thread count."""
        prob, _, layout, q = setup
        a = prob.disc.assemble_jacobian(q)
        x = np.random.default_rng(9).standard_normal(q.size)
        with ProcPool(layout, prob.disc, nworkers=3, threads=4):
            fp = distributed_residual(prob.disc, layout, q,
                                      executor="proc", threads=4)
            yp = distributed_matvec(a, layout, x,
                                    executor="proc", threads=4)
        fs = distributed_residual(prob.disc, layout, q,
                                  executor="seq", threads=4)
        ys = distributed_matvec(a, layout, x, executor="seq", threads=4)
        assert np.array_equal(fp, fs)
        assert np.array_equal(yp, ys)


_KILL_SCRIPT = r"""
import sys
import numpy as np
from repro.euler import wing_problem
from repro.parallel import ProcPool, SPMDLayout
from repro.partition import kway_partition

mode = sys.argv[1]
prob = wing_problem(9, 7, 5)
labels = kway_partition(prob.mesh.vertex_graph(), 4, seed=0)
layout = SPMDLayout.build(prob.mesh.edges, labels)
pool = ProcPool(layout, prob.disc, nworkers=2)
q = prob.initial.flat()
jac = prob.disc.shifted_jacobian(q, cfl=40.0)
pool.matvec(jac, q)                       # loads the matrix segment
print("SEG", pool.shm_name, pool.mat_shm_name, flush=True)
if mode == "raise":
    pool.residual(q)
    raise RuntimeError("coordinator blew up mid-solve")
elif mode == "spin":
    print("READY", flush=True)
    while True:
        pool.residual(q)
"""


class TestLifecycleCrashPaths:
    """close() is the happy path; the finalize guard must also unlink
    segments when the coordinator dies mid-solve (exception, SIGINT)."""

    @staticmethod
    def _segments_of(proc_stdout: str) -> list[str]:
        for line in proc_stdout.splitlines():
            if line.startswith("SEG "):
                return [s for s in line.split()[1:] if s != "None"]
        raise AssertionError(f"no SEG line in output:\n{proc_stdout}")

    def test_coordinator_exception_leaves_no_segments(self, tmp_path):
        script = tmp_path / "crash.py"
        script.write_text(_KILL_SCRIPT)
        proc = subprocess.run(
            [sys.executable, str(script), "raise"],
            capture_output=True, text=True, timeout=120,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(_REPO_ROOT, "src")},
            cwd=_REPO_ROOT)
        assert proc.returncode != 0
        assert "coordinator blew up" in proc.stderr
        for name in self._segments_of(proc.stdout):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_sigint_mid_solve_leaves_no_segments(self, tmp_path):
        script = tmp_path / "spin.py"
        script.write_text(_KILL_SCRIPT)
        proc = subprocess.Popen(
            [sys.executable, str(script), "spin"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(_REPO_ROOT, "src")},
            cwd=_REPO_ROOT)
        try:
            lines = []
            for _ in range(10):
                line = proc.stdout.readline()
                lines.append(line)
                if line.startswith("READY"):
                    break
            assert any(ln.startswith("READY") for ln in lines)
            time.sleep(0.2)               # land the signal mid-solve
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode != 0
        for name in self._segments_of("".join(lines)):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_finalizer_idempotent_after_close(self, setup):
        prob, _, layout, q = setup
        pool = ProcPool(layout, prob.disc, nworkers=2)
        name = pool.shm_name
        pool.close()
        pool.close()                       # idempotent
        pool._finalizer()                  # already spent: no-op
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_matrix_segments_tracked_for_cleanup(self, setup):
        """Every live segment (arena + current matrix) is registered
        with the crash-path guard; replaced matrices are deregistered."""
        prob, _, layout, q = setup
        a = prob.disc.assemble_jacobian(q)
        x = np.random.default_rng(10).standard_normal(q.size)
        with ProcPool(layout, prob.disc, nworkers=2) as pool:
            assert len(pool._cleanup_state["segs"]) == 1
            pool.matvec(a, x)
            assert len(pool._cleanup_state["segs"]) == 2
            a2 = a.copy()
            a2.data *= 2.0
            pool.matvec(a2, x)             # rebroadcast replaces segment
            assert len(pool._cleanup_state["segs"]) == 2
