"""Functional SPMD execution: distributed kernels must equal sequential.

The strongest validation of the parallel layer: running the flux loop
and SpMV with strictly rank-local data + ghost exchanges reproduces
the sequential kernels bit for bit, and the observed communication
matches the cost model's GhostExchangePlan.
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.euler import wing_problem
from repro.parallel import (GhostExchange, SPMDLayout, build_exchange_plan,
                            distributed_dot, distributed_matvec,
                            distributed_residual)
from repro.partition import kway_partition, pmetis_partition
from repro.telemetry import TraceRecorder


@pytest.fixture(scope="module")
def setup():
    prob = wing_problem(9, 7, 5)
    labels = kway_partition(prob.mesh.vertex_graph(), 6, seed=0)
    layout = SPMDLayout.build(prob.mesh.edges, labels)
    rng = np.random.default_rng(0)
    q = prob.initial.flat() + 0.05 * rng.standard_normal(
        prob.disc.num_unknowns)
    return prob, labels, layout, q


class TestLayout:
    def test_owned_partition_disjoint_cover(self, setup):
        prob, labels, layout, _ = setup
        allv = np.concatenate([rd.owned for rd in layout.ranks])
        assert np.array_equal(np.sort(allv),
                              np.arange(prob.mesh.num_vertices))

    def test_ghosts_match_plan(self, setup):
        prob, labels, layout, _ = setup
        plan = build_exchange_plan(prob.mesh.vertex_graph(), labels)
        for rd in layout.ranks:
            assert rd.ghosts.size == plan.ghosts[rd.rank]

    def test_halo_edges_counted_twice(self, setup):
        prob, labels, layout, _ = setup
        total = sum(rd.edge_ids.size for rd in layout.ranks)
        la = labels[prob.mesh.edges[:, 0]]
        lb = labels[prob.mesh.edges[:, 1]]
        cut = int((la != lb).sum())
        assert total == prob.mesh.num_edges + cut

    def test_ghosts_not_owned(self, setup):
        _, _, layout, _ = setup
        for rd in layout.ranks:
            assert np.intersect1d(rd.owned, rd.ghosts).size == 0


class TestDistributedKernels:
    def test_residual_exact(self, setup):
        prob, _, layout, q = setup
        r_dist = distributed_residual(prob.disc, layout, q)
        r_seq = prob.disc.residual(q, second_order=False)
        assert np.array_equal(r_dist, r_seq)   # bitwise

    def test_residual_exact_pmetis(self, setup):
        """Partition-independence: any valid partition reproduces the
        sequential result."""
        prob, _, _, q = setup
        labels = pmetis_partition(prob.mesh.vertex_graph(), 5, seed=1)
        layout = SPMDLayout.build(prob.mesh.edges, labels)
        r_dist = distributed_residual(prob.disc, layout, q)
        r_seq = prob.disc.residual(q, second_order=False)
        assert np.allclose(r_dist, r_seq, atol=1e-14)

    def test_matvec_exact(self, setup):
        prob, _, layout, q = setup
        jac = prob.disc.assemble_jacobian(q)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(jac.shape[0])
        assert np.allclose(distributed_matvec(jac, layout, x), jac @ x,
                           atol=1e-14)

    def test_dot_matches(self, setup):
        prob, _, layout, q = setup
        rng = np.random.default_rng(2)
        x = rng.standard_normal(q.size)
        y = rng.standard_normal(q.size)
        assert distributed_dot(layout, x, y, 4) == pytest.approx(
            float(x @ y), rel=1e-12)

    def test_single_rank_trivial(self, setup):
        prob, _, _, q = setup
        labels = np.zeros(prob.mesh.num_vertices, dtype=np.int64)
        layout = SPMDLayout.build(prob.mesh.edges, labels)
        assert layout.ranks[0].ghosts.size == 0
        r = distributed_residual(prob.disc, layout, q)
        assert np.array_equal(r, prob.disc.residual(q, second_order=False))


class TestExchangeAccounting:
    def test_message_count_bounded_by_neighbor_pairs(self, setup):
        prob, labels, layout, q = setup
        plan = build_exchange_plan(prob.mesh.vertex_graph(), labels)
        ex = GhostExchange(layout, 4)
        distributed_residual(prob.disc, layout, q, ex)
        # One message per (rank, neighbour) pair per refresh.
        assert ex.messages == int(plan.neighbors.sum())

    def test_bytes_match_plan(self, setup):
        prob, labels, layout, q = setup
        plan = build_exchange_plan(prob.mesh.vertex_graph(), labels)
        ex = GhostExchange(layout, 4)
        distributed_residual(prob.disc, layout, q, ex)
        assert ex.bytes_moved == plan.ghosts.sum() * 4 * 8

    def test_counters_mirror_recorder(self, setup):
        """GhostExchange totals and TraceRecorder counters agree."""
        prob, _, layout, q = setup
        rec = TraceRecorder()
        ex = GhostExchange(layout, 4, recorder=rec)
        distributed_residual(prob.disc, layout, q, ex, recorder=rec)
        assert rec.counter("messages") == ex.messages
        assert rec.counter("bytes") == ex.bytes_moved
        # One span per receiving rank per refresh (messages are finer:
        # one per (receiver, owner) pair).
        with_ghosts = sum(1 for rd in layout.ranks if rd.ghosts.size)
        assert rec.phase_calls("ghost_exchange") == with_ghosts

    def test_stale_layout_raises(self, setup):
        """A ghost attributed to a rank that does not own it must be a
        hard error, not a silently-wrong searchsorted gather."""
        prob, _, layout, q = setup
        bad = copy.deepcopy(layout)
        rd = bad.ranks[0]
        nranks = len(bad.ranks)
        rd.ghost_owner[0] = (rd.ghost_owner[0] + 1) % nranks
        with pytest.raises(ValueError, match="stale SPMD layout"):
            distributed_residual(prob.disc, bad, q)

    def test_exchange_overwrites_stale_ghosts(self, setup):
        prob, _, layout, q = setup
        local = [np.full((rd.n_local, 4), np.nan) for rd in layout.ranks]
        qr = q.reshape(-1, 4)
        for rd, lq in zip(layout.ranks, local):
            lq[: rd.n_owned] = qr[rd.owned]
        GhostExchange(layout, 4).refresh(local)
        for rd, lq in zip(layout.ranks, local):
            assert not np.isnan(lq).any()
            assert np.array_equal(lq[rd.n_owned:], qr[rd.ghosts])


class TestDtypePreservation:
    """Working precision follows the vector (paper Sec. 3.2's knob):
    fp32 state in, fp32 residual/matvec out — the NaN scratch fill and
    the accumulators must not promote to float64."""

    @settings(deadline=None, max_examples=8)
    @given(dtype=st.sampled_from([np.float32, np.float64]),
           nparts=st.integers(2, 6), seed=st.integers(0, 100))
    def test_residual_preserves_dtype(self, setup, dtype, nparts, seed):
        prob, _, _, q = setup
        labels = kway_partition(prob.mesh.vertex_graph(), nparts, seed=seed)
        layout = SPMDLayout.build(prob.mesh.edges, labels)
        r = distributed_residual(prob.disc, layout, q.astype(dtype))
        assert r.dtype == dtype
        r64 = distributed_residual(prob.disc, layout, q.astype(np.float64))
        assert np.allclose(r, r64, atol=1e-3 if dtype == np.float32
                           else 1e-14)

    @settings(deadline=None, max_examples=8)
    @given(dtype=st.sampled_from([np.float32, np.float64]),
           nparts=st.integers(2, 6), seed=st.integers(0, 100))
    def test_matvec_preserves_dtype(self, setup, dtype, nparts, seed):
        prob, _, _, q = setup
        labels = kway_partition(prob.mesh.vertex_graph(), nparts, seed=seed)
        layout = SPMDLayout.build(prob.mesh.edges, labels)
        jac = prob.disc.assemble_jacobian(q)
        x = np.random.default_rng(seed).standard_normal(
            jac.shape[0]).astype(dtype)
        y = distributed_matvec(jac, layout, x)
        assert y.dtype == dtype
        assert np.allclose(y, jac @ x.astype(np.float64),
                           atol=1e-2 if dtype == np.float32 else 1e-12)


class TestInstrumentedIdentity:
    def test_residual_bitwise_identical_with_recorder(self, setup):
        prob, _, layout, q = setup
        plain = distributed_residual(prob.disc, layout, q)
        rec = TraceRecorder()
        traced = distributed_residual(prob.disc, layout, q,
                                      GhostExchange(layout, 4, recorder=rec),
                                      recorder=rec)
        assert np.array_equal(plain, traced)     # bitwise
        assert rec.phase_seconds("flux") > 0
        assert rec.wait_seconds("flux") >= 0
        assert len(rec.ranks("flux")) == len(layout.ranks)

    def test_matvec_and_dot_bitwise_identical_with_recorder(self, setup):
        prob, _, layout, q = setup
        jac = prob.disc.assemble_jacobian(q)
        x = np.random.default_rng(3).standard_normal(jac.shape[0])
        rec = TraceRecorder()
        assert np.array_equal(distributed_matvec(jac, layout, x),
                              distributed_matvec(jac, layout, x,
                                                 recorder=rec))
        assert distributed_dot(layout, x, x, 4) == \
            distributed_dot(layout, x, x, 4, recorder=rec)
        assert rec.phase_calls("matvec") == len(layout.ranks)
        assert rec.counter("reductions") == 1
