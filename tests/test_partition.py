"""Partitioners: invariants and the k-MeTiS vs p-MeTiS phenomenology."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import graph_from_edges
from repro.partition import (bisect_level_set, coarsen_graph, edge_cut,
                             fm_refine, heavy_edge_matching, kway_partition,
                             load_imbalance, partition_quality,
                             pmetis_partition, subdomain_components)
from repro.partition.refine import label_components, repair_contiguity


def _check_cover(labels, n, nparts):
    labels = np.asarray(labels)
    assert labels.shape == (n,)
    assert labels.min() >= 0
    assert labels.max() < nparts
    assert np.unique(labels).size == nparts  # no empty parts


class TestCoarsening:
    def test_matching_symmetric(self, medium_graph):
        match = heavy_edge_matching(medium_graph, seed=0)
        assert np.array_equal(match[match], np.arange(medium_graph.num_vertices))

    def test_matching_respects_adjacency(self, medium_graph):
        match = heavy_edge_matching(medium_graph, seed=0)
        for v in range(medium_graph.num_vertices):
            u = match[v]
            if u != v:
                assert u in medium_graph.neighbors(v)

    def test_coarse_weight_conserved(self, medium_graph):
        lvl = coarsen_graph(medium_graph, seed=1)
        assert lvl.graph.vwgt.sum() == medium_graph.vwgt.sum()

    def test_coarse_strictly_smaller(self, medium_graph):
        lvl = coarsen_graph(medium_graph, seed=1)
        assert lvl.graph.num_vertices < medium_graph.num_vertices

    def test_projection_preserves_cut(self, medium_graph):
        """Edge cut of a coarse partition equals the cut of its
        projection (weights were accumulated for exactly this)."""
        lvl = coarsen_graph(medium_graph, seed=2)
        rng = np.random.default_rng(0)
        coarse_labels = rng.integers(0, 3, lvl.graph.num_vertices)
        fine_labels = coarse_labels[lvl.fine_to_coarse]
        assert (edge_cut(lvl.graph, coarse_labels)
                == edge_cut(medium_graph, fine_labels))


class TestKway:
    @pytest.mark.parametrize("nparts", [2, 5, 8])
    def test_valid_partition(self, medium_graph, nparts):
        labels = kway_partition(medium_graph, nparts, seed=0)
        _check_cover(labels, medium_graph.num_vertices, nparts)

    def test_single_part(self, medium_graph):
        labels = kway_partition(medium_graph, 1)
        assert np.all(labels == 0)

    def test_balance_tolerance_met(self, medium_graph):
        labels = kway_partition(medium_graph, 8, seed=1, balance_tol=1.08)
        assert load_imbalance(labels) <= 1.15

    def test_mostly_connected_subdomains(self, medium_graph):
        labels = kway_partition(medium_graph, 8, seed=0)
        comps = subdomain_components(medium_graph, labels)
        assert np.maximum(comps - 1, 0).sum() <= 1

    def test_cut_beats_random(self, medium_graph):
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 8, medium_graph.num_vertices)
        ours = kway_partition(medium_graph, 8, seed=0)
        assert edge_cut(medium_graph, ours) < 0.5 * edge_cut(medium_graph, rand)

    def test_too_many_parts_raises(self):
        g = graph_from_edges(3, [[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            kway_partition(g, 5)


class TestPMetis:
    @pytest.mark.parametrize("nparts", [2, 3, 8])
    def test_valid_partition(self, medium_graph, nparts):
        labels = pmetis_partition(medium_graph, nparts, seed=0)
        _check_cover(labels, medium_graph.num_vertices, nparts)

    def test_near_perfect_balance(self, medium_graph):
        for nparts in (2, 4, 8, 16):
            labels = pmetis_partition(medium_graph, nparts, seed=0)
            assert load_imbalance(labels) <= 1.03

    def test_bisect_halves(self, medium_graph):
        second = bisect_level_set(medium_graph, seed=0)
        n = medium_graph.num_vertices
        assert abs(int(second.sum()) - n // 2) <= 1

    def test_nonpow2_parts(self, medium_graph):
        labels = pmetis_partition(medium_graph, 6, seed=0)
        _check_cover(labels, medium_graph.num_vertices, 6)
        assert load_imbalance(labels) <= 1.05


class TestPhenomenology:
    """The structural contrast driving the paper's Fig. 4."""

    def test_kway_connected_pmetis_balanced(self, medium_graph):
        p = 16
        kl = kway_partition(medium_graph, p, seed=1)
        pl = pmetis_partition(medium_graph, p, seed=1)
        qk = partition_quality(medium_graph, kl)
        qp = partition_quality(medium_graph, pl)
        # p-metis balances better ...
        assert qp.imbalance <= qk.imbalance + 1e-9
        # ... k-way fragments less (or equal).
        assert qk.total_extra_components <= qp.total_extra_components

    def test_fragmentation_grows_with_parts(self, medium_graph):
        xs = [partition_quality(
            medium_graph, pmetis_partition(medium_graph, p, seed=3)
        ).total_extra_components for p in (4, 32)]
        assert xs[1] >= xs[0]


class TestRefine:
    def test_refine_never_worsens_cut_much(self, medium_graph):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 4, medium_graph.num_vertices)
        refined = fm_refine(medium_graph, labels, 4, balance_tol=1.3)
        assert (edge_cut(medium_graph, refined)
                <= edge_cut(medium_graph, labels))

    def test_strict_balance_preserved(self, medium_graph):
        labels = pmetis_partition(medium_graph, 4, seed=0, refine=False)
        before = load_imbalance(labels)
        refined = fm_refine(medium_graph, labels, 4, strict_balance=True)
        assert load_imbalance(refined) <= before + 1e-9

    def test_label_components_consistent(self, medium_graph):
        labels = pmetis_partition(medium_graph, 8, seed=0)
        comp = label_components(medium_graph, labels)
        # Same component -> same label.
        for c in np.unique(comp):
            assert np.unique(labels[comp == c]).size == 1
        # Totals agree with the per-part counter.
        per_part = subdomain_components(medium_graph, labels)
        assert int(comp.max()) + 1 == int(per_part.sum())

    def test_repair_contiguity_heals(self, medium_graph):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 3, medium_graph.num_vertices)  # fragmented
        healed = repair_contiguity(medium_graph, labels, 3)
        comps = subdomain_components(medium_graph, healed)
        assert np.maximum(comps - 1, 0).sum() == 0


@settings(deadline=None, max_examples=10)
@given(st.integers(2, 5), st.integers(0, 20))
def test_property_partitions_cover(nparts, seed):
    from repro.mesh import unit_cube_mesh
    g = unit_cube_mesh(5, jitter=0.2, seed=seed % 3).vertex_graph()
    for fn in (kway_partition, pmetis_partition):
        labels = fn(g, nparts, seed=seed)
        assert labels.shape == (g.num_vertices,)
        assert set(np.unique(labels)) == set(range(nparts))
