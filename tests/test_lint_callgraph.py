"""Unit tests for the project call graph behind R007/R008.

These build :class:`~repro.lint.facts.ModuleFacts` straight from source
strings (no filesystem) and assert on edges, worker-entry detection,
reachability, and path reconstruction — the resolution contract the
interprocedural rules depend on.
"""

from pathlib import Path
from textwrap import dedent

from repro.lint.callgraph import build_call_graph
from repro.lint.facts import extract_facts, module_dotted_name
from repro.lint.model import parse_module


def graph_of(**modules):
    """Build a CallGraph from ``{module_name: source}`` pairs."""
    facts = []
    for modname, src in modules.items():
        rel = "src/" + modname.replace(".", "/") + ".py"
        info = parse_module(Path(rel), rel, source=dedent(src))
        facts.append(extract_facts(info))
    return build_call_graph(facts)


class TestDottedNames:
    def test_src_prefix_stripped(self):
        assert module_dotted_name("src/repro/parallel/spmd.py") == \
            "repro.parallel.spmd"

    def test_package_init_maps_to_package(self):
        assert module_dotted_name("src/repro/lint/__init__.py") == \
            "repro.lint"


class TestEdgeResolution:
    def test_bare_name_call_resolves_to_local_def(self):
        g = graph_of(m="""
            def helper():
                return 1

            def entry():
                return helper()
        """)
        assert ("m", "helper") in g.callees(("m", "entry"))

    def test_callee_defined_after_caller_still_resolves(self):
        # Regression: resolution must be position-independent; a single
        # forward pass missed calls to functions defined further down.
        g = graph_of(m="""
            def entry():
                return helper()

            def helper():
                return 1
        """)
        assert ("m", "helper") in g.callees(("m", "entry"))

    def test_self_method_resolves_to_class_method(self):
        g = graph_of(m="""
            class Pool:
                def run(self):
                    return self.step()

                def step(self):
                    return 1
        """)
        assert ("m", "Pool.step") in g.callees(("m", "Pool.run"))

    def test_constructor_call_expands_to_init(self):
        g = graph_of(m="""
            class Pool:
                def __init__(self):
                    self.n = 1

            def make():
                return Pool()
        """)
        assert ("m", "Pool.__init__") in g.callees(("m", "make"))

    def test_module_alias_call_crosses_modules(self):
        g = graph_of(
            util="""
                def helper():
                    return 1
            """,
            main="""
                import util as u

                def entry():
                    return u.helper()
            """)
        assert ("util", "helper") in g.callees(("main", "entry"))

    def test_from_import_call_crosses_modules(self):
        g = graph_of(
            util="""
                def helper():
                    return 1
            """,
            main="""
                from util import helper

                def entry():
                    return helper()
            """)
        assert ("util", "helper") in g.callees(("main", "entry"))

    def test_constructor_typed_variable_method_resolves(self):
        g = graph_of(m="""
            class Recorder:
                def flush(self):
                    return 1

            def entry():
                rec = Recorder()
                return rec.flush()
        """)
        assert ("m", "Recorder.flush") in g.callees(("m", "entry"))

    def test_duck_typed_attribute_creates_no_edge(self):
        # Under-approximation: an untyped parameter's method call must
        # not wire unrelated same-name methods into the graph.
        g = graph_of(m="""
            class Recorder:
                def flush(self):
                    return 1

            def entry(thing):
                return thing.flush()
        """)
        assert ("m", "Recorder.flush") not in g.callees(("m", "entry"))


class TestWorkerEntries:
    def test_process_target_is_worker_entry(self):
        g = graph_of(m="""
            from multiprocessing import Process

            def worker_main(q):
                return q

            def start(q):
                Process(target=worker_main, args=(q,)).start()
        """)
        assert ("m", "worker_main") in g.worker_entries
        assert ("m", "start") not in g.worker_entries

    def test_thread_target_is_worker_entry(self):
        g = graph_of(m="""
            import threading

            def dispatch_loop():
                return 0

            def start():
                t = threading.Thread(target=dispatch_loop, daemon=True)
                t.start()
                return t
        """)
        assert ("m", "dispatch_loop") in g.worker_entries
        assert ("m", "start") not in g.worker_entries

    def test_register_at_fork_child_hook_is_worker_entry(self):
        g = graph_of(m="""
            import os

            def reset():
                pass

            os.register_at_fork(after_in_child=reset)
        """)
        assert ("m", "reset") in g.worker_entries


class TestReachability:
    SRC = """
        from multiprocessing import Process

        def leaf():
            return 1

        def middle():
            return leaf()

        def worker_main():
            def inner():
                return middle()
            return inner()

        def coordinator_only():
            return leaf()

        def start():
            Process(target=worker_main).start()
    """

    def test_worker_reachable_includes_transitive_and_nested(self):
        g = graph_of(m=self.SRC)
        reach = g.worker_reachable()
        assert ("m", "worker_main") in reach
        assert ("m", "worker_main.<locals>.inner") in reach
        assert ("m", "middle") in reach
        assert ("m", "leaf") in reach

    def test_coordinator_only_stays_out_of_worker_partition(self):
        g = graph_of(m=self.SRC)
        reach = g.worker_reachable()
        assert ("m", "coordinator_only") not in reach
        assert ("m", "start") not in reach

    def test_call_path_reconstruction_is_shortest(self):
        g = graph_of(m=self.SRC)
        paths = g.call_paths_to(("m", "leaf"))
        assert len(paths) == 1
        assert paths[0] == [
            ("m", "worker_main"),
            ("m", "worker_main.<locals>.inner"),
            ("m", "middle"),
            ("m", "leaf"),
        ]

    def test_unknown_root_yields_no_paths(self):
        g = graph_of(m=self.SRC)
        assert g.call_paths_to(("m", "leaf"),
                               roots=[("m", "no_such_fn")]) == []
