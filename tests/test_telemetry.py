"""Telemetry subsystem: recorder semantics, traces, measured Table 3.

The acceptance claims under test: span nesting attributes inclusive
and self time correctly (and survives exceptions), per-rank counters
aggregate, wait accounting implements ``max_r t_r - t_own``, an
instrumented :class:`NKSSolver` run is bitwise-identical to an
uninstrumented one, the measured Table 3 satisfies
``eta_overall = eta_alg * eta_impl`` to 1e-12, and trace JSON writes
are validated and atomic.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core import NKSSolver, SolverConfig
from repro.euler import wing_problem
from repro.perf.regress import atomic_write_json
from repro.telemetry import (KNOWN_PHASES, NULL_RECORDER, NullRecorder,
                             TraceRecorder, load_trace, measured_rows,
                             measured_wall, validate_trace, write_trace)
from repro.telemetry.report import phase_decomposition


def _spin(seconds=2e-4):
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


class TestSpans:
    def test_inclusive_and_self_time(self):
        rec = TraceRecorder()
        with rec.span("krylov"):
            _spin()
            with rec.span("orthogonalization"):
                _spin()
        inner = rec.phase_seconds("orthogonalization")
        outer = rec.phase_seconds("krylov")
        assert 0 < inner < outer
        # Self time is exclusive of directly nested spans — exactly.
        assert rec.self_seconds("krylov") == outer - inner
        assert rec.self_seconds("orthogonalization") == inner

    def test_nesting_depth_and_calls(self):
        rec = TraceRecorder()
        assert rec.depth == 0
        with rec.span("krylov"):
            assert rec.depth == 1
            for _ in range(3):
                with rec.span("matvec"):
                    assert rec.depth == 2
        assert rec.depth == 0
        assert rec.phase_calls("matvec") == 3
        assert rec.phase_calls("krylov") == 1

    def test_exception_pops_stack_and_commits(self):
        rec = TraceRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("flux"):
                raise RuntimeError("kernel blew up")
        assert rec.depth == 0                    # stack not corrupted
        assert rec.phase_calls("flux") == 1      # interval still recorded
        with rec.span("flux"):                   # recorder still usable
            pass
        assert rec.phase_calls("flux") == 2

    def test_unknown_phase_rejected_when_strict(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError, match="unknown phase"):
            rec.span("fluxx")
        with pytest.raises(ValueError, match="unknown phase"):
            rec.record_wait("fluxx", [1.0])
        lax = TraceRecorder(strict=False)
        with lax.span("fluxx"):
            pass
        assert lax.phase_calls("fluxx") == 1

    def test_span_elapsed_exposed(self):
        rec = TraceRecorder()
        with rec.span("flux") as sp:
            _spin()
        assert sp.elapsed > 0
        assert sp.elapsed == rec.phase_seconds("flux")


class TestCountersAndWaits:
    def test_per_rank_counter_aggregation(self):
        rec = TraceRecorder()
        for r in range(3):
            rec.count("messages", 2, rank=r)
        rec.count("messages", 1, rank=1)
        rec.count("bytes", 4096, rank=0)
        assert rec.counter("messages") == 7
        assert rec.counter("messages", rank=1) == 3
        assert rec.counter("messages", rank=2) == 2
        assert rec.counter("bytes") == 4096
        assert rec.counters() == ["bytes", "messages"]
        assert rec.counter("absent") == 0

    def test_wait_is_max_minus_own(self):
        rec = TraceRecorder()
        rec.record_wait("flux", [1.0, 3.0, 2.0])
        assert rec.wait_seconds("flux", rank=0) == 2.0
        assert rec.wait_seconds("flux", rank=1) == 0.0
        assert rec.wait_seconds("flux", rank=2) == 1.0
        rec.record_wait("flux", [1.0, 3.0, 2.0])   # accumulates
        assert rec.wait_seconds("flux", rank=0) == 4.0
        assert rec.wait_seconds("flux") == 6.0
        rec.record_wait("flux", [])                # no ranks: no-op

    def test_phase_wall_is_max_total_plus_wait(self):
        rec = TraceRecorder()
        # Wait-only accounting (no committed spans): the wall is the
        # max over ranks of accumulated wait.
        rec.record_wait("trisolve", [1.0, 3.0])   # rank 0 waits 2.0
        rec.record_wait("trisolve", [2.0, 1.0])   # rank 1 waits 1.0
        assert rec.phase_wall("trisolve") == pytest.approx(2.0)
        assert rec.phase_wall("allreduce") == 0.0  # unrecorded

    def test_ranks_and_phases_queries(self):
        rec = TraceRecorder()
        with rec.span("flux", rank=2):
            pass
        rec.record_wait("allreduce", [0.1, 0.2])
        assert rec.phases() == ["allreduce", "flux"]
        assert rec.ranks("flux") == [2]
        assert rec.ranks() == [0, 1, 2]


class TestShardMerging:
    """The worker-side API: externally clocked spans/waits + merge."""

    def test_add_span_seconds_accumulates(self):
        rec = TraceRecorder()
        rec.add_span_seconds("flux", 0.5, rank=2)
        rec.add_span_seconds("flux", 0.25, rank=2, calls=3,
                             self_seconds=0.125)
        assert rec.phase_seconds("flux", rank=2) == pytest.approx(0.75)
        assert rec.self_seconds("flux", rank=2) == pytest.approx(0.625)
        assert rec.phase_calls("flux", rank=2) == 4
        with pytest.raises(ValueError):
            rec.add_span_seconds("not_a_phase", 1.0)

    def test_add_wait_seconds_accumulates(self):
        rec = TraceRecorder()
        rec.add_wait_seconds("flux", 1, 0.125)
        rec.add_wait_seconds("flux", 1, 0.25)
        assert rec.wait_seconds("flux", rank=1) == pytest.approx(0.375)
        with pytest.raises(ValueError):
            rec.add_wait_seconds("not_a_phase", 0, 1.0)

    def test_merge_dict_combines_shards(self):
        shard = TraceRecorder()
        with shard.span("flux", rank=3):
            _spin()
        shard.add_wait_seconds("flux", 3, 0.5)
        shard.count("messages", 7, rank=3)

        rec = TraceRecorder()
        rec.add_span_seconds("flux", 1.0, rank=3)
        rec.merge_dict(shard.to_dict())
        assert rec.phase_calls("flux", rank=3) == 2
        assert rec.phase_seconds("flux", rank=3) == pytest.approx(
            1.0 + shard.phase_seconds("flux", rank=3))
        assert rec.wait_seconds("flux", rank=3) == pytest.approx(0.5)
        assert rec.counter("messages", rank=3) == 7

    def test_merge_dict_rejects_unknown_phase(self):
        rec = TraceRecorder()
        bad = {"phases": {"warp_drive": {"0": {"total_s": 1.0,
                                               "self_s": 1.0,
                                               "count": 1}}},
               "waits": {}, "counters": {}}
        with pytest.raises(ValueError):
            rec.merge_dict(bad)

    def test_null_recorder_shard_api_noop(self):
        NULL_RECORDER.add_span_seconds("flux", 1.0)
        NULL_RECORDER.add_wait_seconds("flux", 0, 1.0)
        NULL_RECORDER.merge_dict({"phases": {}, "waits": {},
                                  "counters": {}})


class TestNullRecorder:
    def test_all_operations_noop(self):
        rec = NullRecorder()
        sp = rec.span("anything-goes")
        assert rec.span("other") is sp          # cached, reusable
        with sp:
            with rec.span("nested"):
                pass
        assert sp.elapsed == 0.0
        assert rec.count("x", 5) is None
        assert rec.record_wait("flux", [1.0]) is None

    def test_shared_singleton(self):
        assert isinstance(NULL_RECORDER, NullRecorder)


class TestTraceDocument:
    def _recorded(self):
        rec = TraceRecorder()
        with rec.span("flux", rank=0):
            pass
        with rec.span("flux", rank=1):
            pass
        rec.record_wait("flux", [1e-3, 2e-3])
        rec.count("messages", 3, rank=1)
        return rec

    def test_roundtrip(self, tmp_path):
        rec = self._recorded()
        path = write_trace(tmp_path / "trace.json", rec,
                           meta={"nprocs": 2})
        doc = load_trace(path)
        assert doc["meta"] == {"nprocs": 2}
        assert set(doc["phases"]) == {"flux"}
        entry = doc["phases"]["flux"]["0"]
        assert set(entry) == {"total_s", "self_s", "count", "wait_s"}
        assert entry["wait_s"] == pytest.approx(1e-3)
        assert doc["counters"]["messages"]["1"] == 3

    def test_validate_rejects_unknown_phase(self):
        doc = self._recorded().to_dict()
        doc["phases"]["warp_drive"] = {"0": {"total_s": 1.0, "self_s": 1.0,
                                             "count": 1, "wait_s": 0.0}}
        with pytest.raises(ValueError, match="unknown phase name 'warp_drive'"):
            validate_trace(doc)

    def test_validate_rejects_bad_schema_and_entries(self):
        good = self._recorded().to_dict()
        bad_version = dict(good, schema_version=99)
        with pytest.raises(ValueError, match="unsupported trace schema"):
            validate_trace(bad_version)
        missing = json.loads(json.dumps(good))
        del missing["phases"]["flux"]["0"]["self_s"]
        with pytest.raises(ValueError, match="self_s"):
            validate_trace(missing)
        bad_rank = json.loads(json.dumps(good))
        bad_rank["phases"]["flux"]["zero"] = good["phases"]["flux"]["0"]
        with pytest.raises(ValueError, match="bad rank key"):
            validate_trace(bad_rank)

    def test_write_trace_refuses_invalid(self, tmp_path):
        doc = self._recorded().to_dict()
        doc["phases"]["typo_phase"] = {}
        with pytest.raises(ValueError):
            write_trace(tmp_path / "t.json", doc)
        assert not (tmp_path / "t.json").exists()


class TestAtomicWrite:
    def test_crash_mid_write_preserves_old_file(self, tmp_path):
        path = tmp_path / "report.json"
        atomic_write_json(path, {"v": 1})
        # json.dumps raises before any byte reaches `path`.
        with pytest.raises(TypeError):
            atomic_write_json(path, {"v": object()})
        assert json.loads(path.read_text()) == {"v": 1}
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []                   # temp file cleaned up

    def test_tempfile_in_same_directory(self, tmp_path, monkeypatch):
        seen = {}
        import tempfile as _tempfile
        real = _tempfile.mkstemp

        def spy(*args, **kwargs):
            seen["dir"] = kwargs.get("dir")
            return real(*args, **kwargs)

        monkeypatch.setattr("repro.perf.regress.tempfile.mkstemp", spy)
        atomic_write_json(tmp_path / "r.json", {"a": 1})
        assert seen["dir"] == tmp_path


@pytest.fixture(scope="module")
def tiny_problem():
    return wing_problem(7, 5, 4)


class TestInstrumentedSolveIdentity:
    def test_bitwise_identical_to_uninstrumented(self, tiny_problem):
        prob = tiny_problem
        cfg = SolverConfig(max_steps=4)
        q0 = prob.initial.flat()
        plain = NKSSolver(prob.disc, cfg).solve(q0)
        rec = TraceRecorder()
        traced = NKSSolver(prob.disc, cfg, recorder=rec).solve(q0)
        assert np.array_equal(plain.final_state, traced.final_state)
        assert plain.num_steps == traced.num_steps
        assert [s.fnorm for s in plain.steps] == \
               [s.fnorm for s in traced.steps]
        assert plain.total_linear_iterations == traced.total_linear_iterations

    def test_solver_records_expected_phases_and_counters(self, tiny_problem):
        prob = tiny_problem
        rec = TraceRecorder()
        report = NKSSolver(prob.disc, SolverConfig(max_steps=3),
                           recorder=rec).solve(prob.initial.flat())
        for phase in ("flux", "jacobian", "krylov", "precond_setup",
                      "trisolve", "orthogonalization"):
            assert rec.phase_seconds(phase) > 0, phase
        assert set(rec.phases()) <= KNOWN_PHASES
        assert rec.counter("newton_steps") == report.num_steps
        assert rec.counter("linear_iterations") == \
            report.total_linear_iterations
        # orthogonalization nests inside krylov: self < inclusive.
        assert rec.self_seconds("krylov") < rec.phase_seconds("krylov")


class TestPhaseDecomposition:
    """Edge cases of the per-phase compute/wait split."""

    def test_empty_trace_gives_empty_decomposition(self):
        assert phase_decomposition(TraceRecorder()) == {}

    def test_silent_phases_are_omitted(self):
        rec = TraceRecorder()
        with rec.span("flux"):
            _spin()
        out = phase_decomposition(rec)
        assert set(out) == {"flux"}
        assert out["flux"]["calls"] == 1
        assert out["flux"]["wait_s"] == 0.0

    def test_single_rank_has_zero_wait(self):
        # One rank can never wait on itself: record_wait over a
        # single-element list books max_r t_r - t_own = 0.
        rec = TraceRecorder()
        rec.add_span_seconds("matvec", 2.0, rank=0)
        rec.record_wait("matvec", [2.0])
        out = phase_decomposition(rec)
        assert out["matvec"]["total_s"] == pytest.approx(2.0)
        assert out["matvec"]["wait_s"] == 0.0
        assert out["matvec"]["wait_fraction"] == 0.0

    def test_wait_only_phase_survives(self):
        # A phase whose compute time rounds to zero but whose ranks
        # waited must still appear (wait_fraction 1.0, not a div/0).
        rec = TraceRecorder()
        rec.record_wait("allreduce", [0.0, 1.0])
        out = phase_decomposition(rec)
        assert out["allreduce"]["total_s"] == 0.0
        assert out["allreduce"]["wait_s"] == pytest.approx(1.0)
        assert out["allreduce"]["wait_fraction"] == pytest.approx(1.0)

    def test_disagreeing_worker_shards_union(self):
        # Two workers report disjoint phase sets (rank 0 only did
        # flux, rank 1 only matvec); the merged decomposition is the
        # union with per-phase attribution intact.
        shard0, shard1 = TraceRecorder(), TraceRecorder()
        shard0.add_span_seconds("flux", 1.0, rank=0)
        shard1.add_span_seconds("matvec", 3.0, rank=1)
        shard1.add_wait_seconds("matvec", 1, 0.5)
        rec = TraceRecorder()
        rec.merge_dict(shard0.to_dict())
        rec.merge_dict(shard1.to_dict())
        out = phase_decomposition(rec)
        assert set(out) == {"flux", "matvec"}
        assert out["flux"]["total_s"] == pytest.approx(1.0)
        assert out["matvec"]["total_s"] == pytest.approx(3.0)
        assert out["matvec"]["wait_s"] == pytest.approx(0.5)
        assert out["matvec"]["wait_fraction"] == pytest.approx(0.5 / 3.5)

    def test_shards_disagreeing_on_same_phase_accumulate(self):
        # Both workers timed "trisolve" on different ranks with very
        # different durations — totals sum, calls sum, and the wall
        # (per-rank max) reflects the slower shard.
        shard0, shard1 = TraceRecorder(), TraceRecorder()
        shard0.add_span_seconds("trisolve", 1.0, rank=0)
        shard1.add_span_seconds("trisolve", 4.0, rank=1)
        rec = TraceRecorder()
        rec.merge_dict(shard0.to_dict())
        rec.merge_dict(shard1.to_dict())
        out = phase_decomposition(rec)
        assert out["trisolve"]["total_s"] == pytest.approx(5.0)
        assert out["trisolve"]["calls"] == 2
        assert out["trisolve"]["wall_s"] == pytest.approx(4.0)

    def test_restricted_phase_tuple_filters(self):
        rec = TraceRecorder()
        rec.add_span_seconds("flux", 1.0)
        rec.add_span_seconds("matvec", 1.0)
        out = phase_decomposition(rec, phases=("matvec",))
        assert set(out) == {"matvec"}


class TestMeasuredTable3:
    def test_eta_identity_and_trace_dump(self, tmp_path):
        from repro.experiments import run_table3_measured

        result = run_table3_measured(procs=(2, 4), size="small",
                                     max_steps=2, trace_dir=tmp_path)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.time > 0
            assert abs(row.eta_overall - row.eta_alg * row.eta_impl) < 1e-12
        ref = result.rows[0]
        assert ref.eta_overall == 1.0 and ref.speedup == 1.0
        # The replayed iteration counts feed eta_alg directly.
        assert result.rows[1].eta_alg == pytest.approx(
            ref.its / result.rows[1].its)
        for p in (2, 4):
            doc = load_trace(tmp_path / f"trace_p{p}.json")
            assert doc["meta"]["nprocs"] == p
            assert "ghost_exchange" in doc["phases"]
            assert len(doc["phases"]["flux"]) == p   # one entry per rank
        # to_table() renders without error and carries every row.
        table = result.to_table()
        assert len(table.rows) == 2

    def test_measured_wall_sums_phase_walls(self):
        rec = TraceRecorder()
        rec.record_wait("flux", [1.0, 2.0])
        rec.record_wait("allreduce", [0.5, 0.25])
        assert measured_wall(rec) == pytest.approx(
            rec.phase_wall("flux") + rec.phase_wall("allreduce"))

    def test_measured_rows_reference_normalisation(self):
        # Synthetic traces: pure waits give deterministic walls.
        def mk(wall):
            rec = TraceRecorder()
            rec.record_wait("flux", [wall, 0.0])
            return rec
        rows = measured_rows([(4, 30, mk(0.5)), (2, 20, mk(1.0))])
        assert [r.nprocs for r in rows] == [2, 4]    # sorted, ref first
        r4 = rows[1]
        assert r4.speedup == pytest.approx(2.0)
        assert r4.eta_alg == pytest.approx(20 / 30)
        assert abs(r4.eta_overall - r4.eta_alg * r4.eta_impl) < 1e-12
