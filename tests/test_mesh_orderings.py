"""Ordering machinery: the Table 1 / Fig. 3 layout axes."""

import numpy as np
import pytest

from repro.mesh import (EdgeOrdering, VertexOrdering, apply_orderings,
                        edge_span_stats, mesh_locality_report, order_edges,
                        order_vertices, shuffle_vertices, unit_cube_mesh)
from repro.mesh.metrics import loop_stride_stats


@pytest.fixture(scope="module")
def shuffled():
    return shuffle_vertices(unit_cube_mesh(8, jitter=0.2, seed=2), seed=9)


class TestVertexOrdering:
    def test_natural_identity(self, shuffled):
        perm = order_vertices(shuffled, "natural")
        assert np.array_equal(perm, np.arange(shuffled.num_vertices))

    def test_all_are_permutations(self, shuffled):
        for kind in VertexOrdering:
            perm = order_vertices(shuffled, kind)
            assert np.array_equal(np.sort(perm),
                                  np.arange(shuffled.num_vertices))

    def test_rcm_shrinks_span(self, shuffled):
        before = edge_span_stats(shuffled.edges)["mean"]
        m = shuffled.permuted(order_vertices(shuffled, "rcm"))
        after = edge_span_stats(m.edges)["mean"]
        assert after < before / 2

    def test_unknown_kind_raises(self, shuffled):
        with pytest.raises(ValueError):
            order_vertices(shuffled, "zigzag")


class TestEdgeOrdering:
    def test_all_are_permutations(self, shuffled):
        for kind in EdgeOrdering:
            perm = order_edges(shuffled, kind)
            assert np.array_equal(np.sort(perm),
                                  np.arange(shuffled.num_edges))

    def test_sorted_is_lexicographic(self, shuffled):
        perm = order_edges(shuffled, "sorted")
        e = shuffled.edges[perm]
        keys = e[:, 0] * shuffled.num_vertices + e[:, 1]
        assert np.all(np.diff(keys) > 0)

    def test_sorted_minimises_loop_stride(self, shuffled):
        strides = {}
        for kind in ["sorted", "colored", "random"]:
            e = shuffled.edges[order_edges(shuffled, kind)]
            strides[kind] = loop_stride_stats(e)["mean_abs"]
        assert strides["sorted"] < strides["colored"]
        assert strides["sorted"] < strides["random"]

    def test_colored_order_groups_colors(self, shuffled):
        from repro.graph import distance2_edge_coloring
        perm = order_edges(shuffled, "colored")
        colors = distance2_edge_coloring(shuffled.edges,
                                         shuffled.num_vertices)[perm]
        # Colors appear as contiguous runs.
        changes = int((np.diff(colors) != 0).sum())
        assert changes == len(set(colors.tolist())) - 1


class TestApplyOrderings:
    def test_geometry_preserved(self, shuffled):
        m = apply_orderings(shuffled, "rcm", "sorted")
        assert np.isclose(m.tet_volumes().sum(),
                          shuffled.tet_volumes().sum())
        assert m.num_edges == shuffled.num_edges

    def test_tuned_layout_improves_all_metrics(self, shuffled):
        base = mesh_locality_report(apply_orderings(shuffled, "natural",
                                                    "colored"))
        tuned = mesh_locality_report(apply_orderings(shuffled, "rcm",
                                                     "sorted"))
        assert tuned.matrix_bandwidth < base.matrix_bandwidth
        assert tuned.edge_span["mean"] < base.edge_span["mean"]
        assert (tuned.loop_stride["mean_abs"]
                < base.loop_stride["mean_abs"])

    def test_name_records_layout(self, shuffled):
        m = apply_orderings(shuffled, "rcm", "sorted")
        assert "rcm" in m.name and "sorted" in m.name

    def test_dual_metrics_consistent_after_reordering(self, shuffled):
        from repro.mesh import compute_dual_metrics
        m = apply_orderings(shuffled, "rcm", "sorted")
        dm = compute_dual_metrics(m)
        assert dm.closure_defect(m.edges).max() < 1e-11


class TestLocalityReport:
    def test_report_rows_well_formed(self, shuffled):
        rep = mesh_locality_report(shuffled)
        rows = dict(rep.rows())
        assert int(rows["vertices"]) == shuffled.num_vertices
        assert int(rows["edges"]) == shuffled.num_edges
