"""CSR matrix tests against dense/scipy oracles and property checks."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import CSRMatrix


def random_sparse(n, density, seed, diag_boost=5.0):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    a[a > density] = 0.0
    a += np.eye(n) * diag_boost
    return a


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        a = random_sparse(20, 0.3, 0)
        m = CSRMatrix.from_dense(a)
        assert np.allclose(m.to_dense(), a)
        assert m.nnz == np.count_nonzero(a)

    def test_from_coo_sums_duplicates(self):
        m = CSRMatrix.from_coo([0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0], (2, 2))
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == 5.0

    def test_rows_sorted(self, rng):
        a = random_sparse(15, 0.4, 1)
        m = CSRMatrix.from_dense(a)
        for i in range(m.nrows):
            cols, _ = m.row(i)
            assert np.all(np.diff(cols) > 0)

    def test_eye(self):
        m = CSRMatrix.eye(4, 2.5)
        assert np.allclose(m.to_dense(), 2.5 * np.eye(4))

    def test_inconsistent_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 2]), indices=np.array([0]),
                      data=np.array([1.0]), ncols=2)


class TestOps:
    def test_matvec_matches_dense(self, rng):
        a = random_sparse(30, 0.2, 2)
        x = rng.random(30)
        assert np.allclose(CSRMatrix.from_dense(a) @ x, a @ x)

    def test_matvec_empty_rows(self):
        a = np.zeros((4, 4))
        a[1, 2] = 3.0
        m = CSRMatrix.from_dense(a)
        assert np.allclose(m @ np.ones(4), a @ np.ones(4))

    def test_matvec_matches_scipy(self, rng):
        a = random_sparse(40, 0.15, 3)
        x = rng.random(40)
        ours = CSRMatrix.from_dense(a) @ x
        theirs = sp.csr_matrix(a) @ x
        assert np.allclose(ours, theirs)

    def test_transpose(self, rng):
        a = random_sparse(12, 0.4, 4)
        assert np.allclose(CSRMatrix.from_dense(a).transpose().to_dense(),
                           a.T)

    def test_diagonal(self, rng):
        a = random_sparse(12, 0.3, 5)
        assert np.allclose(CSRMatrix.from_dense(a).diagonal(), np.diag(a))

    def test_add_diagonal(self, rng):
        a = random_sparse(12, 0.3, 6)
        d = rng.random(12)
        m = CSRMatrix.from_dense(a).add_diagonal(d)
        assert np.allclose(m.to_dense(), a + np.diag(d))

    def test_add_diagonal_requires_structural_diag(self):
        a = np.array([[0.0, 1.0], [1.0, 2.0]])
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(a).add_diagonal(np.ones(2))

    def test_scale_rows(self, rng):
        a = random_sparse(10, 0.3, 7)
        s = rng.random(10)
        m = CSRMatrix.from_dense(a).scale_rows(s)
        assert np.allclose(m.to_dense(), a * s[:, None])

    def test_permuted_symmetric(self, rng):
        a = random_sparse(14, 0.3, 8)
        perm = rng.permutation(14)
        m = CSRMatrix.from_dense(a).permuted(perm)
        assert np.allclose(m.to_dense(), a[np.ix_(perm, perm)])

    def test_submatrix(self, rng):
        a = random_sparse(14, 0.3, 9)
        rows = np.array([1, 4, 7, 13])
        m = CSRMatrix.from_dense(a).submatrix(rows)
        assert np.allclose(m.to_dense(), a[np.ix_(rows, rows)])

    def test_astype(self, rng):
        a = random_sparse(8, 0.4, 10)
        m32 = CSRMatrix.from_dense(a).astype(np.float32)
        assert m32.data.dtype == np.float32
        assert np.allclose(m32.to_dense(), a, atol=1e-6)

    def test_copy_independent(self, rng):
        m = CSRMatrix.from_dense(random_sparse(6, 0.5, 11))
        c = m.copy()
        c.data[:] = 0
        assert not np.allclose(m.data, 0)


@settings(deadline=None, max_examples=25)
@given(arrays(np.float64, (8, 8), elements=st.floats(-10, 10)),
       arrays(np.float64, 8, elements=st.floats(-10, 10)))
def test_property_matvec_linear(a, x):
    """Property: SpMV agrees with dense product and is linear."""
    m = CSRMatrix.from_dense(a)
    assert np.allclose(m @ x, a @ x, atol=1e-9)
    assert np.allclose(m @ (2.0 * x), 2.0 * (m @ x), atol=1e-9)


@settings(deadline=None, max_examples=20)
@given(st.integers(2, 10), st.integers(0, 100))
def test_property_permute_preserves_spectrum_trace(n, seed):
    rng = np.random.default_rng(seed)
    a = random_sparse(n, 0.5, seed)
    perm = rng.permutation(n)
    m = CSRMatrix.from_dense(a).permuted(perm)
    assert np.isclose(np.trace(m.to_dense()), np.trace(a))
