"""Inexact Newton and the SER pseudo-transient controller."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import PTCConfig, SERController, newton_solve


def quadratic_system(n, seed):
    """F(u) = A u + u*u - b with known root."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) * 0.3 + np.eye(n) * 3
    u_star = rng.random(n)
    b = a @ u_star + u_star**2

    def residual(u):
        return a @ u + u**2 - b

    def solve_linear(u, f):
        j = a + np.diag(2 * u)
        return np.linalg.solve(j, -f), 1

    return residual, solve_linear, u_star


class TestNewton:
    def test_converges_quadratically(self):
        residual, solve_linear, u_star = quadratic_system(10, 0)
        res = newton_solve(residual, solve_linear, np.zeros(10), rtol=1e-12)
        assert res.converged
        assert np.allclose(res.u, u_star, atol=1e-8)
        # Quadratic tail: few iterations.
        assert res.iterations <= 10

    def test_respects_max_newton(self):
        residual, solve_linear, _ = quadratic_system(10, 1)
        res = newton_solve(residual, solve_linear, np.zeros(10) + 100,
                           rtol=1e-14, max_newton=2)
        assert res.iterations <= 2

    def test_line_search_monotone(self):
        residual, solve_linear, _ = quadratic_system(8, 2)
        res = newton_solve(residual, solve_linear, np.ones(8) * 3,
                           rtol=1e-10, line_search=True)
        r = np.array(res.residual_norms)
        assert np.all(np.diff(r) <= 1e-9 * r[:-1] + 1e-14)

    def test_already_converged(self):
        residual, solve_linear, u_star = quadratic_system(6, 3)
        res = newton_solve(residual, solve_linear, u_star, rtol=1e-6)
        assert res.converged
        assert res.iterations == 0

    def test_inexact_solves_still_converge(self):
        """Loose forcing (noisy linear solve) converges, just slower."""
        residual, solve_linear, u_star = quadratic_system(10, 4)
        rng = np.random.default_rng(0)

        def sloppy(u, f):
            d, its = solve_linear(u, f)
            return d * (1 + 0.01 * rng.standard_normal(d.size)), its

        res = newton_solve(residual, sloppy, np.zeros(10), rtol=1e-8,
                           max_newton=50)
        assert res.converged

    def test_function_eval_accounting(self):
        residual, solve_linear, _ = quadratic_system(6, 5)
        res = newton_solve(residual, solve_linear, np.zeros(6), rtol=1e-10)
        assert res.function_evals >= res.iterations + 1


class TestSERController:
    def test_cfl_grows_as_residual_drops(self):
        c = SERController(PTCConfig(cfl0=10.0, exponent=1.0))
        c.update(1.0)
        assert c.cfl == pytest.approx(10.0)
        c.update(0.1)
        assert c.cfl == pytest.approx(100.0)
        c.update(0.01)
        assert c.cfl == pytest.approx(1000.0)

    def test_power_law_exponent(self):
        c = SERController(PTCConfig(cfl0=5.0, exponent=0.75))
        c.update(1.0)
        c.update(0.01)
        assert c.cfl == pytest.approx(5.0 * 100**0.75)

    def test_cfl_capped(self):
        c = SERController(PTCConfig(cfl0=10.0, cfl_max=1e4))
        c.update(1.0)
        c.update(1e-12)
        assert c.cfl == 1e4

    def test_cfl_can_shrink_on_residual_growth(self):
        c = SERController(PTCConfig(cfl0=10.0))
        c.update(1.0)
        c.update(4.0)   # residual grew
        assert c.cfl < 10.0

    def test_cfl_floor(self):
        c = SERController(PTCConfig(cfl0=10.0, cfl_min=1.0))
        c.update(1.0)
        c.update(1e9)
        assert c.cfl == 1.0

    def test_order_switching(self):
        cfg = PTCConfig(cfl0=1.0, switch_order_drop=1e-2,
                        first_order_exponent=1.5)
        c = SERController(cfg)
        c.update(1.0)
        assert not c.second_order
        c.update(0.5)
        assert not c.second_order
        c.update(0.009)
        assert c.second_order

    def test_first_order_exponent_used(self):
        cfg = PTCConfig(cfl0=1.0, exponent=0.75, switch_order_drop=1e-6,
                        first_order_exponent=1.5)
        c = SERController(cfg)
        c.update(1.0)
        c.update(0.1)
        assert c.cfl == pytest.approx(10**1.5)

    def test_rejects_bad_norm(self):
        c = SERController(PTCConfig())
        with pytest.raises(ValueError):
            c.update(float("nan"))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PTCConfig(cfl0=-1)
        with pytest.raises(ValueError):
            PTCConfig(cfl0=10, cfl_max=5)

    @settings(deadline=None, max_examples=30)
    @given(st.floats(0.1, 100), st.floats(0.25, 1.5),
           st.lists(st.floats(1e-12, 1e3), min_size=1, max_size=20))
    def test_property_cfl_always_in_bounds(self, cfl0, p, norms):
        cfg = PTCConfig(cfl0=cfl0, exponent=p, cfl_max=1e6, cfl_min=1e-3)
        c = SERController(cfg)
        for f in norms:
            cfl = c.update(f)
            assert cfg.cfl_min <= cfl <= cfg.cfl_max
