"""Level-scheduled triangular solves."""

import numpy as np
import pytest

from repro.sparse.trisolve import (level_schedule, level_schedule_ref,
                                   lower_solve_blocks, lower_solve_csr,
                                   upper_solve_blocks, upper_solve_csr)


def random_lower(n, density, seed):
    rng = np.random.default_rng(seed)
    l = np.tril(rng.standard_normal((n, n)), -1)
    l[np.abs(l) < np.quantile(np.abs(l[np.tril_indices(n, -1)]),
                              1 - density)] = 0.0
    return l


def to_csr_parts(tri):
    n = tri.shape[0]
    rows, cols = np.nonzero(tri)
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols.astype(np.int64), tri[rows, cols]


class TestLevelSchedule:
    def test_levels_partition_rows(self):
        l = random_lower(20, 0.3, 0)
        indptr, indices, _ = to_csr_parts(l)
        levels = level_schedule(indptr, indices)
        allrows = np.concatenate(levels)
        assert np.array_equal(np.sort(allrows), np.arange(20))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("reverse", [False, True])
    def test_wavefront_matches_ref_oracle(self, seed, reverse):
        """The R001 contract pair: level_schedule vs its *_ref oracle."""
        l = random_lower(30, 0.25, seed)
        tri = l.T if reverse else l
        indptr, indices, _ = to_csr_parts(tri)
        got = level_schedule(indptr, indices, reverse=reverse)
        want = level_schedule_ref(indptr, indices, reverse=reverse)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)

    def test_dependencies_respected(self):
        l = random_lower(25, 0.3, 1)
        indptr, indices, _ = to_csr_parts(l)
        levels = level_schedule(indptr, indices)
        rank = np.empty(25, dtype=int)
        for k, rows in enumerate(levels):
            rank[rows] = k
        for i in range(25):
            deps = indices[indptr[i]:indptr[i + 1]]
            assert np.all(rank[deps] < rank[i])

    def test_diagonal_matrix_one_level(self):
        indptr = np.zeros(11, dtype=np.int64)
        levels = level_schedule(indptr, np.empty(0, dtype=np.int64))
        assert len(levels) == 1
        assert levels[0].size == 10

    def test_dense_lower_n_levels(self):
        l = np.tril(np.ones((6, 6)), -1)
        indptr, indices, _ = to_csr_parts(l)
        assert len(level_schedule(indptr, indices)) == 6

    def test_reverse_for_upper(self):
        u = np.triu(np.ones((5, 5)), 1)
        indptr, indices, _ = to_csr_parts(u)
        levels = level_schedule(indptr, indices, reverse=True)
        rank = np.empty(5, dtype=int)
        for k, rows in enumerate(levels):
            rank[rows] = k
        for i in range(5):
            deps = indices[indptr[i]:indptr[i + 1]]
            if deps.size:
                assert np.all(rank[deps] < rank[i])


class TestScalarSolves:
    def test_lower_unit_solve(self, rng):
        l = random_lower(30, 0.3, 2)
        indptr, indices, data = to_csr_parts(l)
        levels = level_schedule(indptr, indices)
        b = rng.random(30)
        x = lower_solve_csr(indptr, indices, data, b, levels)
        assert np.allclose((np.eye(30) + l) @ x, b)

    def test_upper_solve(self, rng):
        n = 30
        u_strict = random_lower(n, 0.3, 3).T
        diag = rng.random(n) + 1.0
        indptr, indices, data = to_csr_parts(u_strict)
        levels = level_schedule(indptr, indices, reverse=True)
        b = rng.random(n)
        x = upper_solve_csr(indptr, indices, data, 1.0 / diag, b, levels)
        assert np.allclose((np.diag(diag) + u_strict) @ x, b)


class TestBlockSolves:
    def test_lower_block_solve(self, rng):
        n, bs = 12, 3
        pattern = np.tril(rng.random((n, n)) < 0.3, -1)
        rows, cols = np.nonzero(pattern)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        data = rng.standard_normal((rows.size, bs, bs)) * 0.3
        levels = level_schedule(indptr, cols.astype(np.int64))
        b = rng.random(n * bs)
        x = lower_solve_blocks(indptr, cols.astype(np.int64), data, b,
                               levels, bs)
        # Build the dense block lower matrix with unit diagonal blocks.
        dense = np.eye(n * bs)
        for k, (i, j) in enumerate(zip(rows, cols)):
            dense[bs*i:bs*i+bs, bs*j:bs*j+bs] = data[k]
        assert np.allclose(dense @ x, b)

    def test_upper_block_solve(self, rng):
        n, bs = 10, 2
        pattern = np.triu(rng.random((n, n)) < 0.3, 1)
        rows, cols = np.nonzero(pattern)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        data = rng.standard_normal((rows.size, bs, bs)) * 0.3
        dblocks = rng.standard_normal((n, bs, bs)) + 4 * np.eye(bs)
        inv_diag = np.linalg.inv(dblocks)
        levels = level_schedule(indptr, cols.astype(np.int64), reverse=True)
        b = rng.random(n * bs)
        x = upper_solve_blocks(indptr, cols.astype(np.int64), data,
                               inv_diag, b, levels, bs)
        dense = np.zeros((n * bs, n * bs))
        for i in range(n):
            dense[bs*i:bs*i+bs, bs*i:bs*i+bs] = dblocks[i]
        for k, (i, j) in enumerate(zip(rows, cols)):
            dense[bs*i:bs*i+bs, bs*j:bs*j+bs] = data[k]
        assert np.allclose(dense @ x, b)
