"""Address-trace generators and the hierarchy runner."""

import numpy as np
import pytest

from repro.memory import (CacheConfig, MemoryHierarchy, TraceLayout,
                          flux_loop_trace, spmv_bsr_trace, spmv_csr_trace)
from repro.memory.tlb import TLBConfig
from repro.sparse import CSRMatrix
from tests.test_sparse_bsr import random_bsr


@pytest.fixture(scope="module")
def csr(rng):
    a = rng.random((30, 30))
    a[a < 0.7] = 0
    a += np.eye(30)
    return CSRMatrix.from_dense(a)


class TestSpMVTrace:
    def test_length(self, csr):
        tr = spmv_csr_trace(csr)
        # 3 per nonzero + rowptr + y per row.
        assert tr.size == 3 * csr.nnz + 2 * csr.nrows

    def test_distinct_arrays_dont_collide(self, csr):
        tr = spmv_csr_trace(csr)
        # All addresses positive, and the number of distinct 1 MiB
        # regions matches the five arrays.
        assert tr.min() > 0
        regions = np.unique(tr >> 20)
        assert regions.size >= 4

    def test_bsr_fewer_index_refs(self):
        m = random_bsr(8, 4, 0.5, 0)
        tb = spmv_bsr_trace(m)
        ts = spmv_csr_trace(m.to_csr())
        # Same value count, far fewer index reads -> shorter trace.
        assert tb.size < ts.size

    def test_x_gather_addresses_reflect_columns(self, csr):
        lay = TraceLayout()
        tr = spmv_csr_trace(csr, lay)
        # The x gathers are the 3rd element of each nonzero triplet;
        # their relative offsets reproduce the column indices.
        # Recover by looking at the most common region.
        # (Smoke check: as many distinct x addresses as distinct cols.)
        region = tr >> 20
        vals, counts = np.unique(region, return_counts=True)
        assert counts.max() >= csr.nnz  # data region or x region


class TestFluxTrace:
    def test_length_interlaced_first_order(self, small_mesh):
        tr = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4,
                             second_order=False)
        ne = small_mesh.num_edges
        per_edge = 2 + 4 + 4 + 3 + 4 * 4
        assert tr.size == ne * per_edge

    def test_second_order_adds_gradient_reads(self, small_mesh):
        t1 = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4,
                             second_order=False)
        t2 = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4,
                             second_order=True)
        # coords (3+3) + gradients (12+12) per edge.
        assert t2.size == t1.size + 30 * small_mesh.num_edges

    def test_rw_flag(self, small_mesh):
        t1 = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4,
                             rw_residual=False)
        t2 = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4,
                             rw_residual=True)
        assert t2.size == t1.size + 2 * 4 * small_mesh.num_edges

    def test_noninterlaced_spreads_pages(self, small_mesh):
        """Field-split layout touches ~ncomp x more pages per stencil."""
        page = 4096
        ti = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4,
                             interlaced=True)
        tn = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4,
                             interlaced=False)
        # Pages touched per 64-access window, averaged (proxy for TLB
        # pressure): noninterlaced must be larger.
        def pages_per_window(tr):
            w = 64
            m = tr.size // w
            pg = (tr[: m * w] // page).reshape(m, w)
            return np.mean([np.unique(row).size for row in pg])
        assert pages_per_window(tn) > pages_per_window(ti)

    def test_edge_order_changes_trace(self, small_mesh, rng):
        perm = rng.permutation(small_mesh.num_edges)
        t1 = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4)
        t2 = flux_loop_trace(small_mesh.edges[perm],
                             small_mesh.num_vertices, 4)
        assert not np.array_equal(t1, t2)
        assert np.array_equal(np.sort(np.unique(t1)), np.sort(np.unique(t2)))


class TestHierarchy:
    def test_l2_sees_only_l1_misses(self, small_mesh):
        l1 = CacheConfig("L1", 1024, 32, 2)
        l2 = CacheConfig("L2", 8192, 32, 2)
        tlb = TLBConfig("TLB", 8, 4096)
        tr = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4)
        h = MemoryHierarchy(l1, l2, tlb).run(tr)
        c = h.counters
        assert c.l2_misses <= c.l1_misses <= c.accesses
        assert h.l2.accesses == c.l1_misses

    def test_tlb_sees_everything(self, small_mesh):
        l1 = CacheConfig("L1", 1024, 32, 2)
        l2 = CacheConfig("L2", 8192, 32, 2)
        tlb = TLBConfig("TLB", 8, 4096)
        tr = spmv_csr_trace_of(small_mesh)
        h = MemoryHierarchy(l1, l2, tlb).run(tr)
        assert h.tlb.accesses == tr.size

    def test_counters_accumulate_across_runs(self, small_mesh):
        l1 = CacheConfig("L1", 1024, 32, 2)
        l2 = CacheConfig("L2", 8192, 32, 2)
        tlb = TLBConfig("TLB", 8, 4096)
        tr = flux_loop_trace(small_mesh.edges, small_mesh.num_vertices, 4)
        h = MemoryHierarchy(l1, l2, tlb)
        h.run(tr)
        a1 = h.counters.accesses
        h.run(tr)
        assert h.counters.accesses == 2 * a1


def spmv_csr_trace_of(mesh):
    from repro.sparse import block_structure_from_edges, assemble_bsr
    st = block_structure_from_edges(mesh.num_vertices, mesh.edges)
    a = assemble_bsr(st, 1,
                     np.ones((mesh.num_vertices, 1, 1)),
                     np.ones((mesh.num_edges, 1, 1)),
                     np.ones((mesh.num_edges, 1, 1)))
    return spmv_csr_trace(a.to_csr())


class TestOrderingEffects:
    """The Fig. 3 mechanism, in miniature."""

    def test_reordering_cuts_tlb_misses(self):
        from repro.mesh import (apply_orderings, shuffle_vertices,
                                unit_cube_mesh)
        m = shuffle_vertices(unit_cube_mesh(10, jitter=0.2), seed=3)
        # >= number of arrays a second-order stencil touches, so a
        # well-ordered walk can actually hold its working pages.
        tlb = TLBConfig("TLB", 24, 4096)
        l1 = CacheConfig("L1", 4096, 32, 2)
        l2 = CacheConfig("L2", 32768, 64, 2)

        def tlb_misses(mesh):
            tr = flux_loop_trace(mesh.edges, mesh.num_vertices, 4)
            return MemoryHierarchy(l1, l2, tlb).run(tr).counters.tlb_misses

        bad = tlb_misses(apply_orderings(m, "natural", "colored"))
        good = tlb_misses(apply_orderings(m, "rcm", "sorted"))
        assert good < bad / 5

    def test_interlacing_cuts_l1_misses(self):
        from repro.mesh import shuffle_vertices, unit_cube_mesh
        m = shuffle_vertices(unit_cube_mesh(10, jitter=0.2), seed=3)
        l1 = CacheConfig("L1", 8192, 32, 2)
        l2 = CacheConfig("L2", 65536, 64, 2)
        tlb = TLBConfig("TLB", 16, 4096)

        def l1_misses(interlaced):
            tr = flux_loop_trace(m.edges, m.num_vertices, 4,
                                 interlaced=interlaced)
            return MemoryHierarchy(l1, l2, tlb).run(tr).counters.l1_misses

        assert l1_misses(True) < l1_misses(False)
