"""RCM ordering: correctness and bandwidth-reduction behaviour.

scipy.sparse.csgraph.reverse_cuthill_mckee is used as a quality oracle
(orderings may differ; the achieved bandwidth must be comparable).
"""

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.graph import (bandwidth, cuthill_mckee, envelope_profile,
                         graph_from_edges, rcm_ordering)
from repro.mesh import shuffle_vertices, unit_cube_mesh


def _scipy_bandwidth(graph, perm):
    edges = graph.edge_list()
    inv = np.empty(graph.num_vertices, dtype=np.int64)
    inv[perm] = np.arange(graph.num_vertices)
    e = inv[edges]
    return int(np.abs(e[:, 0] - e[:, 1]).max())


class TestRCM:
    def test_is_permutation(self, medium_graph):
        perm = rcm_ordering(medium_graph)
        assert np.array_equal(np.sort(perm),
                              np.arange(medium_graph.num_vertices))

    def test_reverses_cm(self, small_graph):
        cm = cuthill_mckee(small_graph)
        rcm = rcm_ordering(small_graph)
        assert np.array_equal(rcm, cm[::-1])

    def test_reduces_bandwidth_on_shuffled_mesh(self):
        mesh = shuffle_vertices(unit_cube_mesh(8, jitter=0.2), seed=11)
        g = mesh.vertex_graph()
        bw_before = bandwidth(g)
        bw_after = bandwidth(g, rcm_ordering(g))
        assert bw_after < bw_before / 3

    def test_reduces_profile(self):
        mesh = shuffle_vertices(unit_cube_mesh(8, jitter=0.2), seed=11)
        g = mesh.vertex_graph()
        assert envelope_profile(g, rcm_ordering(g)) < envelope_profile(g)

    def test_comparable_to_scipy(self):
        mesh = shuffle_vertices(unit_cube_mesh(8, jitter=0.2), seed=4)
        g = mesh.vertex_graph()
        ours = bandwidth(g, rcm_ordering(g))
        edges = g.edge_list()
        n = g.num_vertices
        a = sp.coo_matrix((np.ones(edges.shape[0]),
                           (edges[:, 0], edges[:, 1])), shape=(n, n))
        a = (a + a.T).tocsr()
        sperm = np.asarray(reverse_cuthill_mckee(a, symmetric_mode=True))
        theirs = _scipy_bandwidth(g, sperm)
        assert ours <= 1.5 * theirs + 5

    def test_disconnected_graph_covered(self):
        g = graph_from_edges(7, [[0, 1], [1, 2], [4, 5], [5, 6]])
        perm = rcm_ordering(g)
        assert np.array_equal(np.sort(perm), np.arange(7))

    def test_path_graph_is_optimal(self):
        n = 20
        edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
        rng = np.random.default_rng(0)
        relab = rng.permutation(n)
        g = graph_from_edges(n, relab[edges])
        assert bandwidth(g, rcm_ordering(g)) == 1


class TestBandwidthMetric:
    def test_identity_perm_matches_default(self, small_graph):
        n = small_graph.num_vertices
        assert bandwidth(small_graph) == bandwidth(small_graph,
                                                   np.arange(n))

    def test_empty_graph(self):
        g = graph_from_edges(3, np.empty((0, 2), dtype=np.int64))
        assert bandwidth(g) == 0
        assert envelope_profile(g) == 0
