"""Setup shim so `pip install -e .` works on offline machines without
the `wheel` package (legacy editable install path)."""

from setuptools import setup

setup()
